//! The dynamic adjacency store used by ElGA agents.
//!
//! The paper stores the dynamic graph "as a flat hash map with vectors"
//! and keeps "both in and out edges" (§4). We mirror that: a hash map
//! from vertex id to a record holding an out-neighbor vector and an
//! in-neighbor vector. A store-level edge set provides O(1) duplicate
//! detection so the graph remains simple under repeated insertions, and
//! lets deletions of absent edges be cheap no-ops (turnstile streams
//! routinely carry both).

use crate::types::{Action, Batch, Edge, EdgeChange, VertexId};
use elga_hash::{FxHashMap, FxHashSet};

/// Per-vertex adjacency record.
#[derive(Debug, Clone, Default)]
struct VertexRecord {
    out: Vec<VertexId>,
    inn: Vec<VertexId>,
}

/// A dynamic directed graph: hash map of vertices → in/out neighbor
/// vectors, with an edge set for O(1) membership.
#[derive(Debug, Clone, Default)]
pub struct AdjacencyStore {
    vertices: FxHashMap<VertexId, VertexRecord>,
    edges: FxHashSet<Edge>,
}

impl AdjacencyStore {
    /// An empty graph (`G⁰ = (∅, ∅)`, Definition 2.3).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a store from an edge iterator, ignoring duplicates.
    pub fn from_edges(edges: impl IntoIterator<Item = (VertexId, VertexId)>) -> Self {
        let mut g = AdjacencyStore::new();
        for (u, v) in edges {
            g.insert(u, v);
        }
        g
    }

    /// Insert edge `(u, v)`. Returns `false` if it was already present.
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> bool {
        if !self.edges.insert(Edge::new(u, v)) {
            return false;
        }
        self.vertices.entry(u).or_default().out.push(v);
        self.vertices.entry(v).or_default().inn.push(u);
        true
    }

    /// Remove edge `(u, v)`. Returns `false` if it was absent. Isolated
    /// endpoints are removed from the vertex map so memory stays
    /// `O(n + m)` for the *current* graph (Goal 2).
    pub fn remove(&mut self, u: VertexId, v: VertexId) -> bool {
        if !self.edges.remove(&Edge::new(u, v)) {
            return false;
        }
        let mut drop_u = false;
        if let Some(rec) = self.vertices.get_mut(&u) {
            if let Some(pos) = rec.out.iter().position(|&x| x == v) {
                rec.out.swap_remove(pos);
            }
            drop_u = rec.out.is_empty() && rec.inn.is_empty();
        }
        if drop_u {
            self.vertices.remove(&u);
        }
        let mut drop_v = false;
        if let Some(rec) = self.vertices.get_mut(&v) {
            if let Some(pos) = rec.inn.iter().position(|&x| x == u) {
                rec.inn.swap_remove(pos);
            }
            drop_v = rec.out.is_empty() && rec.inn.is_empty();
        }
        if drop_v {
            self.vertices.remove(&v);
        }
        true
    }

    /// Apply a single turnstile change. Returns whether the graph
    /// actually changed.
    pub fn apply(&mut self, change: EdgeChange) -> bool {
        match change.action {
            Action::Insert => self.insert(change.edge.src, change.edge.dst),
            Action::Delete => self.remove(change.edge.src, change.edge.dst),
        }
    }

    /// Apply a whole batch; returns how many changes took effect.
    pub fn apply_batch(&mut self, batch: &Batch) -> usize {
        batch.changes.iter().filter(|&&c| self.apply(c)).count()
    }

    /// Whether edge `(u, v)` is present.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edges.contains(&Edge::new(u, v))
    }

    /// Out-neighbors of `u` (empty slice if unknown). Order is
    /// insertion order disturbed by `swap_remove`; algorithms must not
    /// rely on it.
    #[inline]
    pub fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        self.vertices.get(&u).map_or(&[], |r| &r.out)
    }

    /// In-neighbors of `u` (empty slice if unknown).
    #[inline]
    pub fn in_neighbors(&self, u: VertexId) -> &[VertexId] {
        self.vertices.get(&u).map_or(&[], |r| &r.inn)
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.out_neighbors(u).len()
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: VertexId) -> usize {
        self.in_neighbors(u).len()
    }

    /// Total degree (in + out) of `u` — what the count-min sketch
    /// estimates for replication decisions.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.vertices
            .get(&u)
            .map_or(0, |r| r.out.len() + r.inn.len())
    }

    /// Whether `u` currently has any incident edge.
    #[inline]
    pub fn contains_vertex(&self, u: VertexId) -> bool {
        self.vertices.contains_key(&u)
    }

    /// Number of non-isolated vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph has no edges (and hence no vertices).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterate over vertex ids (arbitrary order).
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices.keys().copied()
    }

    /// Iterate over edges (arbitrary order).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }

    /// Collect all edges into a vector (sorted, for deterministic
    /// comparisons in tests and migration logic).
    pub fn edges_sorted(&self) -> Vec<Edge> {
        let mut v: Vec<Edge> = self.edges.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Remove every edge and vertex.
    pub fn clear(&mut self) {
        self.vertices.clear();
        self.edges.clear();
    }

    /// Remove and return all edges whose owner (per `keep`) is no
    /// longer this store — the agent-side primitive behind elastic
    /// migration (§3.4.3: "recomputing the correct destination for all
    /// current edges"). Edges for which `keep` returns `false` are
    /// removed and returned.
    pub fn extract_edges<F>(&mut self, mut keep: F) -> Vec<Edge>
    where
        F: FnMut(Edge) -> bool,
    {
        let leaving: Vec<Edge> = self.edges.iter().copied().filter(|&e| !keep(e)).collect();
        for &e in &leaving {
            self.remove(e.src, e.dst);
        }
        leaving
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut g = AdjacencyStore::new();
        assert!(g.insert(1, 2));
        assert!(!g.insert(1, 2), "duplicate insert must be rejected");
        assert!(g.insert(2, 1));
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(1, 3));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.out_neighbors(1), &[2]);
        assert_eq!(g.in_neighbors(1), &[2]);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn remove_edge_and_cleanup_isolated() {
        let mut g = AdjacencyStore::from_edges([(1, 2), (2, 3)]);
        assert!(g.remove(1, 2));
        assert!(!g.remove(1, 2), "double delete is a no-op");
        assert!(!g.contains_vertex(1), "isolated vertex must be dropped");
        assert_eq!(g.num_vertices(), 2);
        assert!(g.remove(2, 3));
        assert!(g.is_empty());
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn self_loop_handling() {
        let mut g = AdjacencyStore::new();
        assert!(g.insert(5, 5));
        assert_eq!(g.out_degree(5), 1);
        assert_eq!(g.in_degree(5), 1);
        assert!(g.remove(5, 5));
        assert!(g.is_empty());
    }

    #[test]
    fn apply_batch_counts_effective_changes() {
        let mut g = AdjacencyStore::new();
        let b = Batch::new(
            1,
            vec![
                EdgeChange::insert(1, 2),
                EdgeChange::insert(1, 2), // duplicate
                EdgeChange::delete(3, 4), // absent
                EdgeChange::insert(2, 3),
                EdgeChange::delete(1, 2),
            ],
        );
        assert_eq!(g.apply_batch(&b), 3);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn directed_asymmetry() {
        let g = AdjacencyStore::from_edges([(1, 2)]);
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(2, 1));
        assert_eq!(g.out_degree(2), 0);
        assert_eq!(g.in_degree(2), 1);
    }

    #[test]
    fn extract_edges_partitions_the_store() {
        let mut g = AdjacencyStore::from_edges([(1, 2), (2, 3), (3, 4), (4, 1)]);
        let leaving = g.extract_edges(|e| e.src % 2 == 0);
        assert_eq!(leaving.len(), 2);
        for e in &leaving {
            assert_eq!(e.src % 2, 1);
            assert!(!g.has_edge(e.src, e.dst));
        }
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edges_sorted_is_deterministic() {
        let g1 = AdjacencyStore::from_edges([(3, 1), (1, 2), (2, 3)]);
        let g2 = AdjacencyStore::from_edges([(2, 3), (3, 1), (1, 2)]);
        assert_eq!(g1.edges_sorted(), g2.edges_sorted());
    }

    #[test]
    fn clear_empties_everything() {
        let mut g = AdjacencyStore::from_edges([(1, 2), (2, 3)]);
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.out_neighbors(1), &[] as &[VertexId]);
    }
}
