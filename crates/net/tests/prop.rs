//! Property tests for the messaging substrate.

use elga_net::{Addr, Frame, InProcTransport, Transport};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NAME: AtomicU64 = AtomicU64::new(0);

fn fresh_name(prefix: &str) -> Addr {
    Addr::inproc(format!("{prefix}-{}", NAME.fetch_add(1, Ordering::Relaxed)))
}

proptest! {
    /// Frames round-trip through the builder/reader for arbitrary
    /// field sequences.
    #[test]
    fn frame_field_roundtrip(
        ptype in any::<u8>(),
        u8s in prop::collection::vec(any::<u8>(), 0..8),
        u32s in prop::collection::vec(any::<u32>(), 0..8),
        u64s in prop::collection::vec(any::<u64>(), 0..8),
        blob in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut b = Frame::builder(ptype);
        for &x in &u8s { b = b.u8(x); }
        for &x in &u32s { b = b.u32(x); }
        for &x in &u64s { b = b.u64(x); }
        b = b.bytes(&blob);
        let f = b.finish();
        prop_assert_eq!(f.packet_type(), ptype);
        let mut r = f.reader();
        for &x in &u8s { prop_assert_eq!(r.u8(), Some(x)); }
        for &x in &u32s { prop_assert_eq!(r.u32(), Some(x)); }
        for &x in &u64s { prop_assert_eq!(r.u64(), Some(x)); }
        prop_assert_eq!(r.bytes(), Some(&blob[..]));
        prop_assert_eq!(r.remaining(), 0);
    }

    /// The in-process transport preserves per-sender FIFO order for
    /// arbitrary message sequences.
    #[test]
    fn inproc_preserves_fifo(values in prop::collection::vec(any::<u64>(), 1..100)) {
        let t = Arc::new(InProcTransport::new());
        let addr = fresh_name("fifo");
        let mb = t.bind(&addr).unwrap();
        let out = t.sender(&addr).unwrap();
        for &v in &values {
            out.send(Frame::builder(1).u64(v).finish()).unwrap();
        }
        for &v in &values {
            let d = mb.recv().unwrap();
            prop_assert_eq!(d.frame.reader().u64(), Some(v));
        }
    }

    /// Pub/sub filtering delivers exactly the matching packet types,
    /// in order.
    #[test]
    fn pubsub_filters_exactly(
        topics in prop::collection::hash_set(any::<u8>(), 0..4),
        stream in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        let t = Arc::new(InProcTransport::new());
        let addr = fresh_name("bus");
        let publ = t.bind_publisher(&addr).unwrap();
        let topic_vec: Vec<u8> = topics.iter().copied().collect();
        let sub = t.subscribe(&addr, &topic_vec).unwrap();
        for &pt in &stream {
            publ.publish(&Frame::signal(pt));
        }
        let expected: Vec<u8> = stream
            .iter()
            .copied()
            .filter(|pt| topics.is_empty() || topics.contains(pt))
            .collect();
        for want in expected {
            let d = sub.recv().unwrap();
            prop_assert_eq!(d.frame.packet_type(), want);
        }
        prop_assert!(sub.try_recv().unwrap().is_none(), "no extra deliveries");
    }
}
