//! In-process transport: crossbeam channels behind the [`Transport`]
//! trait (the `inproc://` analog of §3.5).
//!
//! This backend powers the scaled-down cluster simulation: every ElGA
//! entity is an OS thread, every endpoint a channel. Senders may
//! connect before the receiver binds (the hub creates the channel on
//! first touch), matching ZeroMQ's connection-order independence.

use crate::addr::Addr;
use crate::frame::Frame;
use crate::transport::{
    Delivery, Mailbox, NetError, NetStats, Outbox, Publisher, ReplyHandle, ReplyRoute, Transport,
};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// One registered endpoint: the send side plus the receive side, which
/// is handed out once on `bind`.
struct Slot {
    tx: Sender<Delivery>,
    rx: Option<Receiver<Delivery>>,
}

/// A subscriber of a PUB endpoint: its topic filter and channel.
struct Subscriber {
    topics: Vec<u8>,
    tx: Sender<Delivery>,
}

#[derive(Default)]
struct Hub {
    endpoints: HashMap<String, Slot>,
    topics: HashMap<String, Arc<Mutex<Vec<Subscriber>>>>,
}

impl Hub {
    fn slot(&mut self, name: &str) -> &mut Slot {
        self.endpoints.entry(name.to_string()).or_insert_with(|| {
            let (tx, rx) = unbounded();
            Slot { tx, rx: Some(rx) }
        })
    }

    fn subscribers(&mut self, name: &str) -> Arc<Mutex<Vec<Subscriber>>> {
        self.topics.entry(name.to_string()).or_default().clone()
    }
}

/// The in-process transport. Cheap to clone via `Arc`.
#[derive(Default)]
pub struct InProcTransport {
    hub: Mutex<Hub>,
    stats: Arc<NetStats>,
}

impl InProcTransport {
    /// A fresh, empty transport.
    pub fn new() -> Self {
        Self::default()
    }

    /// Transport-level traffic counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn inproc_name(addr: &Addr) -> Result<&str, NetError> {
        addr.as_inproc().ok_or(NetError::Protocol(
            "in-process transport requires inproc:// addresses",
        ))
    }
}

impl Transport for InProcTransport {
    fn bind(&self, addr: &Addr) -> Result<Mailbox, NetError> {
        let name = Self::inproc_name(addr)?;
        let mut hub = self.hub.lock();
        let slot = hub.slot(name);
        match slot.rx.take() {
            Some(rx) => Ok(Mailbox {
                addr: addr.clone(),
                rx,
                stats: Some(self.stats.clone()),
            }),
            None => Err(NetError::AddrInUse(addr.clone())),
        }
    }

    fn sender(&self, addr: &Addr) -> Result<Outbox, NetError> {
        let name = Self::inproc_name(addr)?;
        let mut hub = self.hub.lock();
        Ok(Outbox {
            tx: hub.slot(name).tx.clone(),
            stats: Some(self.stats.clone()),
        })
    }

    fn request(&self, addr: &Addr, frame: Frame, timeout: Duration) -> Result<Frame, NetError> {
        let out = self.sender(addr)?;
        let (reply_tx, reply_rx) = bounded(1);
        self.stats.record_sent(frame.packet_type(), frame.len());
        out.tx
            .send(Delivery {
                frame,
                reply: Some(ReplyHandle {
                    route: ReplyRoute::Chan(reply_tx),
                }),
            })
            .map_err(|_| NetError::Disconnected)?;
        reply_rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => NetError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }

    fn bind_publisher(&self, addr: &Addr) -> Result<Publisher, NetError> {
        let name = Self::inproc_name(addr)?;
        let subs = self.hub.lock().subscribers(name);
        let stats = self.stats.clone();
        Ok(Publisher {
            addr: addr.clone(),
            sink: Box::new(move |frame: &Frame| {
                let mut subs = subs.lock();
                let mut reached = 0;
                // Drop subscribers whose mailbox is gone, like ZeroMQ
                // reaping dead connections. Each delivery is a
                // reference-counted handle to the one published buffer.
                subs.retain(|s| {
                    let matches = s.topics.is_empty() || s.topics.contains(&frame.packet_type());
                    if !matches {
                        return true;
                    }
                    match s.tx.send(Delivery::push(frame.clone())) {
                        Ok(()) => {
                            reached += 1;
                            true
                        }
                        Err(_) => false,
                    }
                });
                stats.record_sent_n(frame.packet_type(), frame.len(), reached);
                reached as usize
            }),
        })
    }

    fn subscribe(&self, addr: &Addr, topics: &[u8]) -> Result<Mailbox, NetError> {
        let name = Self::inproc_name(addr)?;
        let subs = self.hub.lock().subscribers(name);
        let (tx, rx) = unbounded();
        subs.lock().push(Subscriber {
            topics: topics.to_vec(),
            tx,
        });
        Ok(Mailbox {
            addr: addr.clone(),
            rx,
            stats: Some(self.stats.clone()),
        })
    }

    /// Thread-free override: register the target endpoint's sender as
    /// the subscription sink directly.
    fn subscribe_forward(&self, addr: &Addr, topics: &[u8], target: &Addr) -> Result<(), NetError> {
        let name = Self::inproc_name(addr)?;
        let target_name = Self::inproc_name(target)?.to_string();
        let mut hub = self.hub.lock();
        let tx = hub.slot(&target_name).tx.clone();
        let subs = hub.subscribers(name);
        drop(hub);
        subs.lock().push(Subscriber {
            topics: topics.to_vec(),
            tx,
        });
        Ok(())
    }

    fn net_stats(&self) -> Option<Arc<NetStats>> {
        Some(self.stats.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn t() -> Arc<InProcTransport> {
        Arc::new(InProcTransport::new())
    }

    #[test]
    fn push_then_receive() {
        let t = t();
        let addr = Addr::inproc("a");
        let mb = t.bind(&addr).unwrap();
        let out = t.sender(&addr).unwrap();
        out.send(Frame::signal(3)).unwrap();
        let d = mb.recv().unwrap();
        assert_eq!(d.frame.packet_type(), 3);
        assert!(d.reply.is_none());
    }

    #[test]
    fn sender_before_bind_is_fine() {
        let t = t();
        let addr = Addr::inproc("late");
        let out = t.sender(&addr).unwrap();
        out.send(Frame::signal(1)).unwrap();
        let mb = t.bind(&addr).unwrap();
        assert_eq!(mb.recv().unwrap().frame.packet_type(), 1);
    }

    #[test]
    fn double_bind_rejected() {
        let t = t();
        let addr = Addr::inproc("x");
        let _mb = t.bind(&addr).unwrap();
        assert!(matches!(t.bind(&addr), Err(NetError::AddrInUse(_))));
    }

    #[test]
    fn request_reply_roundtrip() {
        let t = t();
        let addr = Addr::inproc("server");
        let mb = t.bind(&addr).unwrap();
        let t2 = t.clone();
        let addr2 = addr.clone();
        let client = std::thread::spawn(move || {
            t2.request(&addr2, Frame::signal(9), Duration::from_secs(5))
                .unwrap()
        });
        let d = mb.recv().unwrap();
        assert_eq!(d.frame.packet_type(), 9);
        d.reply.unwrap().send(Frame::signal(10)).unwrap();
        assert_eq!(client.join().unwrap().packet_type(), 10);
    }

    #[test]
    fn request_times_out_without_reply() {
        let t = t();
        let addr = Addr::inproc("slow");
        let _mb = t.bind(&addr).unwrap();
        let err = t
            .request(&addr, Frame::signal(1), Duration::from_millis(30))
            .unwrap_err();
        assert!(matches!(err, NetError::Timeout));
    }

    #[test]
    fn pubsub_filters_by_packet_type() {
        let t = t();
        let addr = Addr::inproc("bus");
        let publ = t.bind_publisher(&addr).unwrap();
        let all = t.subscribe(&addr, &[]).unwrap();
        let only2 = t.subscribe(&addr, &[2]).unwrap();
        assert_eq!(publ.publish(&Frame::signal(1)), 1);
        assert_eq!(publ.publish(&Frame::signal(2)), 2);
        assert_eq!(all.backlog(), 2);
        assert_eq!(only2.backlog(), 1);
        assert_eq!(only2.recv().unwrap().frame.packet_type(), 2);
    }

    #[test]
    fn dead_subscribers_are_reaped() {
        let t = t();
        let addr = Addr::inproc("bus2");
        let publ = t.bind_publisher(&addr).unwrap();
        let sub = t.subscribe(&addr, &[]).unwrap();
        drop(sub);
        assert_eq!(publ.publish(&Frame::signal(1)), 0);
    }

    #[test]
    fn subscribe_before_publisher_bind() {
        let t = t();
        let addr = Addr::inproc("bus3");
        let sub = t.subscribe(&addr, &[7]).unwrap();
        let publ = t.bind_publisher(&addr).unwrap();
        publ.publish(&Frame::signal(7));
        assert_eq!(
            sub.recv_timeout(Duration::from_secs(1))
                .unwrap()
                .frame
                .packet_type(),
            7
        );
    }

    #[test]
    fn try_recv_and_backlog() {
        let t = t();
        let addr = Addr::inproc("q");
        let mb = t.bind(&addr).unwrap();
        assert!(mb.try_recv().unwrap().is_none());
        t.sender(&addr).unwrap().send(Frame::signal(1)).unwrap();
        assert_eq!(mb.backlog(), 1);
        assert!(mb.try_recv().unwrap().is_some());
    }

    #[test]
    fn tcp_addr_rejected() {
        let t = t();
        let addr = Addr::parse("tcp://127.0.0.1:1").unwrap();
        assert!(matches!(t.bind(&addr), Err(NetError::Protocol(_))));
    }
}
