//! The transport abstraction: mailboxes, outboxes, publishers, and the
//! [`Transport`] trait implemented by the in-process and TCP backends.

use crate::addr::Addr;
use crate::frame::Frame;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One packet type's traffic totals.
#[derive(Default)]
struct PacketCounter {
    frames: AtomicU64,
    bytes: AtomicU64,
}

/// Per-packet-type frame and byte counters for one transport instance.
///
/// Every [`Outbox`] push, publisher fan-out, and REQ send records
/// under the frame's packet type; every [`Mailbox`] receive records on
/// the other side. Counters are monotonic and lock-free; reads are
/// `Relaxed` snapshots.
pub struct NetStats {
    sent: [PacketCounter; 256],
    recv: [PacketCounter; 256],
    rx_pool_hits: AtomicU64,
    rx_pool_misses: AtomicU64,
}

impl Default for NetStats {
    fn default() -> Self {
        NetStats {
            sent: std::array::from_fn(|_| PacketCounter::default()),
            recv: std::array::from_fn(|_| PacketCounter::default()),
            rx_pool_hits: AtomicU64::new(0),
            rx_pool_misses: AtomicU64::new(0),
        }
    }
}

impl NetStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one sent frame of `packet_type`.
    pub fn record_sent(&self, packet_type: u8, bytes: usize) {
        self.record_sent_n(packet_type, bytes, 1);
    }

    /// Count `copies` identical sent frames of `packet_type` (broadcast).
    pub fn record_sent_n(&self, packet_type: u8, bytes: usize, copies: u64) {
        let c = &self.sent[packet_type as usize];
        c.frames.fetch_add(copies, Ordering::Relaxed);
        c.bytes.fetch_add(bytes as u64 * copies, Ordering::Relaxed);
    }

    /// Fold in RX slab accounting from a receive loop: `hits` messages
    /// parsed out of already-reserved slab capacity, `misses` that
    /// forced the slab to grow (or re-reserve after frames pinned it).
    pub fn record_rx_pool(&self, hits: u64, misses: u64) {
        if hits != 0 {
            self.rx_pool_hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses != 0 {
            self.rx_pool_misses.fetch_add(misses, Ordering::Relaxed);
        }
    }

    /// `(hits, misses)` of the RX slab pool across data-plane receive
    /// loops (mailbox connections). Request/reply and subscription
    /// slabs are excluded: their one-message-per-refill shape is
    /// protocol-inherent (stop-and-wait replies, sporadic broadcasts),
    /// not a property of the pool.
    pub fn rx_pool(&self) -> (u64, u64) {
        (
            self.rx_pool_hits.load(Ordering::Relaxed),
            self.rx_pool_misses.load(Ordering::Relaxed),
        )
    }

    /// Fraction of messages served from an existing batch allocation
    /// (`hits / (hits + misses)`; 0 before any traffic). Each miss is
    /// one batch promotion, so this is the amortization factor of the
    /// RX slab pool.
    pub fn rx_pool_hit_rate(&self) -> f64 {
        let (hits, misses) = self.rx_pool();
        if hits + misses == 0 {
            return 0.0;
        }
        hits as f64 / (hits + misses) as f64
    }

    /// Take the RX pool counters, resetting them to zero. Lets exactly
    /// one consumer claim transport-level counts even when several
    /// agents share one transport — each drained hit/miss is
    /// attributed once cluster-wide.
    pub fn drain_rx_pool(&self) -> (u64, u64) {
        (
            self.rx_pool_hits.swap(0, Ordering::Relaxed),
            self.rx_pool_misses.swap(0, Ordering::Relaxed),
        )
    }

    /// Count one received frame of `packet_type`.
    pub fn record_recv(&self, packet_type: u8, bytes: usize) {
        let c = &self.recv[packet_type as usize];
        c.frames.fetch_add(1, Ordering::Relaxed);
        c.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// `(frames, bytes)` sent under `packet_type`.
    pub fn sent(&self, packet_type: u8) -> (u64, u64) {
        let c = &self.sent[packet_type as usize];
        (
            c.frames.load(Ordering::Relaxed),
            c.bytes.load(Ordering::Relaxed),
        )
    }

    /// `(frames, bytes)` received under `packet_type`.
    pub fn received(&self, packet_type: u8) -> (u64, u64) {
        let c = &self.recv[packet_type as usize];
        (
            c.frames.load(Ordering::Relaxed),
            c.bytes.load(Ordering::Relaxed),
        )
    }

    /// `(frames, bytes)` sent across all packet types.
    pub fn total_sent(&self) -> (u64, u64) {
        self.sent.iter().fold((0, 0), |(f, b), c| {
            (
                f + c.frames.load(Ordering::Relaxed),
                b + c.bytes.load(Ordering::Relaxed),
            )
        })
    }

    /// `(frames, bytes)` received across all packet types.
    pub fn total_received(&self) -> (u64, u64) {
        self.recv.iter().fold((0, 0), |(f, b), c| {
            (
                f + c.frames.load(Ordering::Relaxed),
                b + c.bytes.load(Ordering::Relaxed),
            )
        })
    }
}

impl std::fmt::Debug for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (sf, sb) = self.total_sent();
        let (rf, rb) = self.total_received();
        f.debug_struct("NetStats")
            .field("sent_frames", &sf)
            .field("sent_bytes", &sb)
            .field("recv_frames", &rf)
            .field("recv_bytes", &rb)
            .finish()
    }
}

/// Errors surfaced by the messaging layer.
#[derive(Debug)]
pub enum NetError {
    /// The address is already bound.
    AddrInUse(Addr),
    /// The peer's mailbox is gone (agent left / process exited).
    Disconnected,
    /// A blocking operation timed out.
    Timeout,
    /// Malformed frame on the wire.
    Protocol(&'static str),
    /// Underlying socket error.
    Io(std::io::Error),
    /// A crashed peer's state cannot be rebuilt: there is no valid
    /// checkpoint on disk and no retained change log to replay. The
    /// cluster fails fast instead of limping to a deadline timeout.
    RecoveryUnavailable(&'static str),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::AddrInUse(a) => write!(f, "address in use: {a}"),
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Timeout => write!(f, "operation timed out"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::RecoveryUnavailable(why) => {
                write!(f, "recovery unavailable: {why}")
            }
        }
    }
}

impl NetError {
    /// Whether retrying the operation could plausibly succeed.
    ///
    /// Timeouts and connection-level socket errors are transient: the
    /// peer may be slow, restarting, or the message may have been
    /// dropped by a lossy link. A closed mailbox
    /// ([`NetError::Disconnected`]), a bind conflict, or a protocol
    /// violation will not heal on retry.
    pub fn is_transient(&self) -> bool {
        match self {
            NetError::Timeout => true,
            NetError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::Interrupted
            ),
            NetError::AddrInUse(_)
            | NetError::Disconnected
            | NetError::Protocol(_)
            | NetError::RecoveryUnavailable(_) => false,
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// How a reply is routed back to a requester.
#[derive(Debug)]
pub(crate) enum ReplyRoute {
    /// In-process: a one-shot channel the requester blocks on.
    Chan(Sender<Frame>),
    /// TCP: a handle to the per-connection writer.
    Writer(Sender<Frame>),
}

/// Capability to answer a REQ with exactly one REP.
#[derive(Debug)]
pub struct ReplyHandle {
    pub(crate) route: ReplyRoute,
}

impl ReplyHandle {
    /// Send the reply. Consumes the handle: REQ/REP is strictly
    /// one-for-one (§3.5, "designed for blocking requests and
    /// responses").
    pub fn send(self, frame: Frame) -> Result<(), NetError> {
        let tx = match self.route {
            ReplyRoute::Chan(tx) => tx,
            ReplyRoute::Writer(tx) => tx,
        };
        tx.send(frame).map_err(|_| NetError::Disconnected)
    }
}

/// One received message: the frame plus, for REQ deliveries, the means
/// to reply.
#[derive(Debug)]
pub struct Delivery {
    /// The message.
    pub frame: Frame,
    /// Present iff the sender used [`Transport::request`] and is
    /// blocked awaiting a reply.
    pub reply: Option<ReplyHandle>,
}

impl Delivery {
    /// A PUSH delivery (no reply expected).
    pub fn push(frame: Frame) -> Self {
        Delivery { frame, reply: None }
    }
}

/// Receiving end of a bound endpoint. Entities poll this continuously —
/// "They continuously poll on their communication channel and act on
/// whatever packet they receive" (§3.4).
#[derive(Debug)]
pub struct Mailbox {
    pub(crate) addr: Addr,
    pub(crate) rx: Receiver<Delivery>,
    /// Receive-side traffic counters of the owning transport, when the
    /// backend tracks them.
    pub(crate) stats: Option<Arc<NetStats>>,
}

impl Mailbox {
    fn note(&self, d: &Delivery) {
        if let Some(stats) = &self.stats {
            stats.record_recv(d.frame.packet_type(), d.frame.len());
        }
    }

    /// The bound address.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Block until a message arrives or all senders are gone.
    pub fn recv(&self) -> Result<Delivery, NetError> {
        let d = self.rx.recv().map_err(|_| NetError::Disconnected)?;
        self.note(&d);
        Ok(d)
    }

    /// Block up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Delivery, NetError> {
        let d = self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetError::Timeout,
            RecvTimeoutError::Disconnected => NetError::Disconnected,
        })?;
        self.note(&d);
        Ok(d)
    }

    /// Non-blocking receive; `Ok(None)` when the mailbox is empty.
    pub fn try_recv(&self) -> Result<Option<Delivery>, NetError> {
        match self.rx.try_recv() {
            Ok(d) => {
                self.note(&d);
                Ok(Some(d))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    /// Number of queued messages (approximate under concurrency).
    pub fn backlog(&self) -> usize {
        self.rx.len()
    }
}

/// Non-blocking send handle to a peer (the PUSH pattern: "a
/// non-blocking send ... allows the client to continue executing while
/// [the transport] finishes sending the message", §3.5).
#[derive(Debug, Clone)]
pub struct Outbox {
    pub(crate) tx: Sender<Delivery>,
    /// Send-side traffic counters of the owning transport, when the
    /// backend tracks them.
    pub(crate) stats: Option<Arc<NetStats>>,
}

impl Outbox {
    /// Queue a frame for delivery. Fails only if the peer is gone.
    pub fn send(&self, frame: Frame) -> Result<(), NetError> {
        if let Some(stats) = &self.stats {
            stats.record_sent(frame.packet_type(), frame.len());
        }
        self.tx
            .send(Delivery::push(frame))
            .map_err(|_| NetError::Disconnected)
    }

    /// Frames queued behind this handle that the consumer has not yet
    /// taken (approximate under concurrency). For the in-process
    /// backend this is the peer's mailbox backlog; for TCP it is the
    /// connection writer's queue. [`crate::CoalescingOutbox`] uses it
    /// to bound in-flight bytes.
    pub fn queued(&self) -> usize {
        self.tx.len()
    }
}

/// A bound PUB endpoint fanning frames out to matching subscribers.
pub struct Publisher {
    pub(crate) addr: Addr,
    pub(crate) sink: Box<dyn Fn(&Frame) -> usize + Send + Sync>,
}

impl std::fmt::Debug for Publisher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Publisher").finish_non_exhaustive()
    }
}

impl Publisher {
    /// The bound address (with the actual port for TCP binds to
    /// ephemeral port 0).
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Publish a frame to every subscriber whose topic filter matches
    /// the frame's packet type. Returns the number of subscribers
    /// reached (useful for tests; ZeroMQ offers no such feedback).
    ///
    /// Frames are `Bytes`-backed, so each subscriber receives a cheap
    /// reference-counted handle to the same buffer: one allocation per
    /// broadcast regardless of subscriber count (TCP subscribers pay
    /// the unavoidable socket copy, but no heap copy).
    pub fn publish(&self, frame: &Frame) -> usize {
        (self.sink)(frame)
    }
}

/// A message-passing backend. All methods are callable from any
/// thread; entities share one `Arc<dyn Transport>`.
pub trait Transport: Send + Sync + 'static {
    /// Bind a PULL/REP endpoint and obtain its mailbox.
    fn bind(&self, addr: &Addr) -> Result<Mailbox, NetError>;

    /// Obtain a PUSH handle to `addr`. Binding order does not matter
    /// for in-process endpoints; TCP requires the peer to be listening.
    fn sender(&self, addr: &Addr) -> Result<Outbox, NetError>;

    /// Blocking REQ/REP round trip.
    fn request(&self, addr: &Addr, frame: Frame, timeout: Duration) -> Result<Frame, NetError>;

    /// Bind a PUB endpoint.
    fn bind_publisher(&self, addr: &Addr) -> Result<Publisher, NetError>;

    /// Subscribe to the packet types in `topics` from the publisher at
    /// `addr` (empty `topics` = all messages, as in ZeroMQ).
    fn subscribe(&self, addr: &Addr, topics: &[u8]) -> Result<Mailbox, NetError>;

    /// Subscribe and deliver matching frames into the mailbox bound at
    /// `target`, so a single-threaded entity can poll one channel for
    /// both direct and broadcast traffic (the paper's agents poll one
    /// communication channel, §3.4). The default implementation relays
    /// through a thread; backends may wire it directly.
    fn subscribe_forward(&self, addr: &Addr, topics: &[u8], target: &Addr) -> Result<(), NetError> {
        let sub = self.subscribe(addr, topics)?;
        let out = self.sender(target)?;
        std::thread::spawn(move || {
            while let Ok(d) = sub.recv() {
                if out.send(d.frame).is_err() {
                    break;
                }
            }
        });
        Ok(())
    }

    /// Transport-level traffic counters ([`NetStats`]), when the
    /// backend tracks them. Wrapper transports delegate to their inner
    /// backend.
    fn net_stats(&self) -> Option<Arc<NetStats>> {
        None
    }
}
