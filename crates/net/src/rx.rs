//! Pooled receive slabs and vectored writes for the TCP backend.
//!
//! The TX side already recycles build buffers through a thread-local
//! pool (`frame::pool_take`); this module gives the RX side the same
//! discipline. Each connection reader owns a [`RecvBuf`]: it bulk-reads
//! the socket into a staging buffer (many wire messages per syscall),
//! opportunistically drains whatever else the kernel already buffered
//! (see [`RxSource`]), then moves the complete-message prefix — without
//! copying it — into one shared allocation and hands each payload out
//! as a zero-copy [`Bytes`] slice of that batch. The per-message
//! `Vec<u8>` of the old reader is gone; allocation happens once per
//! read batch, amortized across every message it carried. Read windows
//! adapt to the observed message-size EWMA, so a stream of small
//! replies doesn't zero 64 KiB per wakeup while bulk data still drains
//! in few syscalls.
//!
//! A frame retained past its batch (e.g. an agent buffering a
//! future-phase frame) pins the whole batch allocation until it drops —
//! that is the RX pool invalidation rule documented in DESIGN.md.
//!
//! On the write side, [`write_all_vectored`] gathers a whole message —
//! or a batch of queued messages — into one `writev`, so a coalesced
//! flush is a single syscall instead of one `write` for the header and
//! another for the payload.

use crate::transport::NetStats;
use bytes::Bytes;
use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Largest accepted wire message; guards against corrupt length
/// prefixes.
pub(crate) const MAX_WIRE_LEN: usize = 256 << 20;

/// Ceiling on the adaptive read window. Big enough to drain many
/// coalesced frames at once without zeroing megabytes for a one-off
/// reply.
const READ_WINDOW: usize = 64 * 1024;

/// Floor on the adaptive read window: even a stream of tiny replies
/// reserves enough to batch a burst of them.
const MIN_READ_WINDOW: usize = 4 * 1024;

/// Messages a refill should be able to capture at the EWMA size. 16
/// keeps the hit:miss ratio of a saturated stream at roughly 16:1
/// while staying close to the floor for reply-sized traffic.
const WINDOW_MSGS: usize = 16;

/// A readable source that can additionally report bytes the kernel has
/// already buffered, without blocking. [`RecvBuf::refill`] uses this to
/// drain a whole in-flight burst into one batch allocation instead of
/// promoting a batch per wakeup — the difference between a ~0.5 and a
/// ~0.9 RX pool hit rate under coalesced load.
pub(crate) trait RxSource: Read {
    /// Non-blocking read into `buf`. `Some(n)` means `n > 0` bytes
    /// were already available and copied; `None` means nothing is
    /// pending, the source cannot poll, or the read failed (errors are
    /// deliberately swallowed here — the next blocking read surfaces
    /// them, after the complete batch in hand was delivered).
    fn read_available(&mut self, _buf: &mut [u8]) -> Option<usize> {
        None
    }
}

impl RxSource for TcpStream {
    fn read_available(&mut self, buf: &mut [u8]) -> Option<usize> {
        self.set_nonblocking(true).ok()?;
        let r = self.read(buf);
        let _ = self.set_nonblocking(false);
        match r {
            Ok(n) if n > 0 => Some(n),
            _ => None,
        }
    }
}

/// Byte-slice sources (tests, pre-read buffers) block never, so the
/// default "can't poll" behavior is already right.
impl RxSource for &[u8] {}

/// Most slices handed to one `writev`; past this the batch is split.
const MAX_IOV: usize = 64;

/// A pooled receive buffer for one connection.
///
/// Wire format parsed here: `u32` little-endian length, one opcode
/// byte, then the payload (`length` counts opcode + payload).
pub(crate) struct RecvBuf {
    /// Socket bytes not yet promoted to a batch: at most one partial
    /// message plus whatever the last read appended.
    staging: Vec<u8>,
    /// Current batch of complete messages, shared by every payload
    /// sliced from it.
    batch: Bytes,
    /// Parse offset into `batch`.
    pos: usize,
    /// EWMA of wire message size (header included), driving the
    /// adaptive read window.
    avg_msg: usize,
    stats: Option<Arc<NetStats>>,
}

impl RecvBuf {
    pub(crate) fn new(stats: Option<Arc<NetStats>>) -> Self {
        RecvBuf {
            staging: Vec::new(),
            batch: Bytes::new(),
            pos: 0,
            avg_msg: MIN_READ_WINDOW / WINDOW_MSGS,
            stats,
        }
    }

    /// Read window for the next syscall: sized so a refill can capture
    /// [`WINDOW_MSGS`] messages of the observed size in one go, within
    /// [`MIN_READ_WINDOW`]..[`READ_WINDOW`].
    fn window(&self) -> usize {
        (self.avg_msg * WINDOW_MSGS).clamp(MIN_READ_WINDOW, READ_WINDOW)
    }

    /// Read the next wire message, returning its opcode and a
    /// zero-copy handle on its payload. Blocks (honoring the stream's
    /// read timeout) until a full message is buffered.
    pub(crate) fn read_msg(&mut self, stream: &mut impl RxSource) -> io::Result<(u8, Bytes)> {
        if self.pos >= self.batch.len() {
            self.refill(stream)?;
        }
        // The batch holds only complete, length-validated messages.
        let head = &self.batch[self.pos..];
        let len = u32::from_le_bytes(head[..4].try_into().unwrap()) as usize;
        let op = head[4];
        let payload = self.batch.slice(self.pos + 5..self.pos + 4 + len);
        self.pos += 4 + len;
        // alpha = 1/8 EWMA, never decaying to zero.
        self.avg_msg = (self.avg_msg * 7 / 8 + (4 + len) / 8).max(1);
        if let Some(stats) = &self.stats {
            stats.record_rx_pool(1, 0);
        }
        Ok((op, payload))
    }

    /// Read until the staging buffer holds at least one complete
    /// message, then opportunistically drain whatever else the kernel
    /// already buffered, then promote the complete prefix into a fresh
    /// shared batch. The prefix *moves* into the batch allocation; only
    /// a trailing partial message (if any) is copied forward.
    fn refill(&mut self, stream: &mut impl RxSource) -> io::Result<()> {
        let mut done = loop {
            match complete_prefix(&self.staging)? {
                0 => {}
                k => break k,
            }
            let old = self.staging.len();
            self.staging.resize(old + self.window(), 0);
            match stream.read(&mut self.staging[old..]) {
                Ok(0) => {
                    self.staging.truncate(old);
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-message",
                    ));
                }
                Ok(n) => self.staging.truncate(old + n),
                Err(e) => {
                    self.staging.truncate(old);
                    return Err(e);
                }
            }
        };
        // Opportunistic drain: messages the kernel already holds join
        // this batch instead of each forcing its own promotion. One
        // wakeup, one allocation, the whole burst.
        loop {
            let old = self.staging.len();
            let window = self.window();
            self.staging.resize(old + window, 0);
            match stream.read_available(&mut self.staging[old..]) {
                Some(n) => {
                    self.staging.truncate(old + n);
                    done = complete_prefix(&self.staging)?;
                    if n < window {
                        break; // kernel buffer drained
                    }
                }
                None => {
                    self.staging.truncate(old);
                    break;
                }
            }
        }
        let tail = self.staging.split_off(done);
        let prefix = std::mem::replace(&mut self.staging, tail);
        self.batch = Bytes::from(prefix);
        self.pos = 0;
        if let Some(stats) = &self.stats {
            stats.record_rx_pool(0, 1);
        }
        Ok(())
    }
}

/// How many leading bytes of `buf` form whole wire messages. Validates
/// every length prefix it can see; corrupt lengths surface here before
/// any message from the batch is delivered.
fn complete_prefix(buf: &[u8]) -> io::Result<usize> {
    let mut at = 0;
    while buf.len() - at >= 5 {
        let len = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_WIRE_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad wire length",
            ));
        }
        let total = 4 + len;
        if buf.len() - at < total {
            break;
        }
        at += total;
    }
    Ok(at)
}

/// Write every byte of every part with as few `writev` syscalls as the
/// kernel allows. Hand-rolled partial-write handling (the std
/// `write_all_vectored` is unstable): track a cursor of
/// (part index, offset) and rebuild the slice table after each call.
pub(crate) fn write_all_vectored(w: &mut impl Write, parts: &[&[u8]]) -> io::Result<()> {
    let mut idx = 0;
    let mut off = 0;
    while idx < parts.len() {
        if off >= parts[idx].len() {
            idx += 1;
            off = 0;
            continue;
        }
        let mut iov = [IoSlice::new(&[]); MAX_IOV];
        let mut n = 0;
        iov[n] = IoSlice::new(&parts[idx][off..]);
        n += 1;
        for p in parts[idx + 1..].iter().take(MAX_IOV - 1) {
            iov[n] = IoSlice::new(p);
            n += 1;
        }
        let mut written = w.write_vectored(&iov[..n])?;
        if written == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "failed to write whole message",
            ));
        }
        while written > 0 {
            let avail = parts[idx].len() - off;
            if written >= avail {
                written -= avail;
                idx += 1;
                off = 0;
            } else {
                off += written;
                written = 0;
            }
        }
    }
    Ok(())
}

/// Wire header for one message: length prefix + opcode.
pub(crate) fn wire_head(op: u8, payload_len: usize) -> [u8; 5] {
    let len = (payload_len + 1) as u32;
    let mut head = [0u8; 5];
    head[..4].copy_from_slice(&len.to_le_bytes());
    head[4] = op;
    head
}

/// One message, one `writev`.
pub(crate) fn write_msg(stream: &mut impl Write, op: u8, payload: &[u8]) -> io::Result<()> {
    let head = wire_head(op, payload.len());
    write_all_vectored(stream, &[&head, payload])
}

/// A batch of queued frames as one gather-write: every header and
/// payload lands in a single `writev` (split only past [`MAX_IOV`]
/// slices or a short kernel write).
pub(crate) fn write_frame_batch(
    stream: &mut impl Write,
    op: u8,
    frames: &[crate::frame::Frame],
) -> io::Result<()> {
    let heads: Vec<[u8; 5]> = frames.iter().map(|f| wire_head(op, f.len())).collect();
    let mut parts: Vec<&[u8]> = Vec::with_capacity(frames.len() * 2);
    for (head, frame) in heads.iter().zip(frames) {
        parts.push(head);
        parts.push(frame.as_bytes());
    }
    write_all_vectored(stream, &parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that accepts at most `cap` bytes per call, forcing the
    /// partial-write paths.
    struct Dribble {
        out: Vec<u8>,
        cap: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            let mut left = self.cap;
            let mut wrote = 0;
            for b in bufs {
                if left == 0 {
                    break;
                }
                let n = b.len().min(left);
                self.out.extend_from_slice(&b[..n]);
                left -= n;
                wrote += n;
            }
            Ok(wrote)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_write_survives_partial_writes() {
        for cap in [1, 3, 7, 1000] {
            let mut w = Dribble {
                out: Vec::new(),
                cap,
            };
            let parts: Vec<&[u8]> = vec![b"alpha", b"", b"beta", b"gamma-delta"];
            write_all_vectored(&mut w, &parts).unwrap();
            assert_eq!(w.out, b"alphabetagamma-delta");
        }
    }

    #[test]
    fn vectored_write_spills_past_max_iov() {
        let payloads: Vec<Vec<u8>> = (0..200u8).map(|i| vec![i; 3]).collect();
        let parts: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let mut w = Dribble {
            out: Vec::new(),
            cap: usize::MAX,
        };
        write_all_vectored(&mut w, &parts).unwrap();
        let want: Vec<u8> = payloads.concat();
        assert_eq!(w.out, want);
    }

    #[test]
    fn recv_buf_reassembles_split_messages() {
        // Two messages delivered across awkward chunk boundaries.
        let mut wire = Vec::new();
        write_msg(&mut wire, 1, b"hello").unwrap();
        write_msg(&mut wire, 3, b"worlds").unwrap();
        struct Chunked {
            data: Vec<u8>,
            pos: usize,
            step: usize,
        }
        impl Read for Chunked {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let n = self.step.min(self.data.len() - self.pos).min(buf.len());
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        impl RxSource for Chunked {}
        for step in [1, 2, 5, 64] {
            let mut r = Chunked {
                data: wire.clone(),
                pos: 0,
                step,
            };
            let mut rb = RecvBuf::new(None);
            let (op, payload) = rb.read_msg(&mut r).unwrap();
            assert_eq!((op, &payload[..]), (1, &b"hello"[..]));
            let (op, payload) = rb.read_msg(&mut r).unwrap();
            assert_eq!((op, &payload[..]), (3, &b"worlds"[..]));
            // Stream exhausted mid-nothing: next read reports EOF.
            assert_eq!(
                rb.read_msg(&mut r).unwrap_err().kind(),
                io::ErrorKind::UnexpectedEof
            );
        }
    }

    #[test]
    fn recv_buf_rejects_bad_lengths() {
        for bad in [0u32, (MAX_WIRE_LEN as u32) + 1] {
            let mut wire = bad.to_le_bytes().to_vec();
            wire.extend_from_slice(&[0u8; 8]);
            let mut rb = RecvBuf::new(None);
            let err = rb.read_msg(&mut &wire[..]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
    }

    #[test]
    fn recv_buf_amortizes_allocation_across_a_batch() {
        // 64 messages arriving back-to-back must be served out of a
        // handful of batch allocations (hits), not one alloc each.
        let mut wire = Vec::new();
        for i in 0..64u64 {
            write_msg(&mut wire, 1, &i.to_le_bytes()).unwrap();
        }
        let stats = Arc::new(NetStats::new());
        let mut rb = RecvBuf::new(Some(stats.clone()));
        let mut cursor = &wire[..];
        let mut payloads = Vec::new();
        for i in 0..64u64 {
            let (op, payload) = rb.read_msg(&mut cursor).unwrap();
            assert_eq!(op, 1);
            assert_eq!(&payload[..], &i.to_le_bytes());
            payloads.push(payload);
        }
        // Payloads from one batch share a single allocation: the Bytes
        // views are contiguous slices of the same region.
        assert_eq!(
            unsafe { payloads[0].as_ptr().add(13) },
            payloads[1].as_ptr()
        );
        let (hits, misses) = stats.rx_pool();
        assert_eq!(hits, 64, "every message is a pool hit");
        assert!(
            misses <= 2,
            "batch allocations must be amortized (got {misses} misses)"
        );
    }

    /// A source that serves one blocking message at a time but exposes
    /// the rest through `read_available` — the shape of a TCP socket
    /// whose kernel buffer filled while the reader slept.
    struct Bursty {
        data: Vec<u8>,
        pos: usize,
        first_msg: usize,
    }

    impl Read for Bursty {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            // Blocking read: only the first message's bytes.
            let n = self
                .first_msg
                .saturating_sub(self.pos)
                .min(buf.len())
                .min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    impl RxSource for Bursty {
        fn read_available(&mut self, buf: &mut [u8]) -> Option<usize> {
            let n = (self.data.len() - self.pos).min(buf.len());
            if n == 0 {
                return None;
            }
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Some(n)
        }
    }

    #[test]
    fn opportunistic_drain_joins_pending_messages_to_the_batch() {
        // 32 messages; the blocking read yields only the first, the
        // rest sit "in the kernel". The drain must fold them into the
        // same batch: one miss total, not one per wakeup.
        let mut wire = Vec::new();
        let mut first_msg = 0;
        for i in 0..32u64 {
            write_msg(&mut wire, 2, &i.to_le_bytes()).unwrap();
            if i == 0 {
                first_msg = wire.len();
            }
        }
        let stats = Arc::new(NetStats::new());
        let mut rb = RecvBuf::new(Some(stats.clone()));
        let mut src = Bursty {
            data: wire,
            pos: 0,
            first_msg,
        };
        for i in 0..32u64 {
            let (op, payload) = rb.read_msg(&mut src).unwrap();
            assert_eq!((op, &payload[..]), (2, &i.to_le_bytes()[..]));
        }
        let (hits, misses) = stats.rx_pool();
        assert_eq!(hits, 32);
        assert_eq!(misses, 1, "drained burst must share one batch");
        assert!(stats.rx_pool_hit_rate() > 0.95);
    }

    #[test]
    fn read_window_adapts_to_message_size() {
        let mut rb = RecvBuf::new(None);
        assert_eq!(rb.window(), MIN_READ_WINDOW);
        // A run of large messages grows the window toward the cap...
        let mut wire = Vec::new();
        for _ in 0..64 {
            write_msg(&mut wire, 1, &[0u8; 16 * 1024]).unwrap();
        }
        let mut cursor = &wire[..];
        for _ in 0..64 {
            rb.read_msg(&mut cursor).unwrap();
        }
        assert_eq!(rb.window(), READ_WINDOW);
        // ...and a long run of tiny replies shrinks it back down.
        let mut wire = Vec::new();
        for _ in 0..256 {
            write_msg(&mut wire, 1, b"ok").unwrap();
        }
        let mut cursor = &wire[..];
        for _ in 0..256 {
            rb.read_msg(&mut cursor).unwrap();
        }
        assert_eq!(rb.window(), MIN_READ_WINDOW);
    }
}
