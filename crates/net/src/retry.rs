//! Bounded retry with exponential backoff and jitter for transient
//! transport failures.
//!
//! Every REQ/REP and PUSH call site in `elga-core` used to be
//! one-shot: a single timeout or refused connection failed the whole
//! operation (or worse, was silently swallowed). [`TransportExt`]
//! gives any [`Transport`] two retrying helpers governed by a
//! [`SendPolicy`]: transient errors ([`NetError::is_transient`]) are
//! retried with exponential backoff + deterministic jitter until the
//! retry budget or the overall deadline runs out; fatal errors
//! (closed mailbox, protocol violation) surface immediately.

use crate::addr::Addr;
use crate::frame::Frame;
use crate::transport::{NetError, Transport};
use std::time::{Duration, Instant};

/// Retry budget for one logical send or request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendPolicy {
    /// Maximum number of *re*-tries after the first attempt.
    pub retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Overall wall-clock budget across all attempts. Once exceeded,
    /// the last error is returned even if retries remain.
    pub deadline: Duration,
}

impl Default for SendPolicy {
    fn default() -> Self {
        Self {
            retries: 3,
            base_delay: Duration::from_millis(5),
            deadline: Duration::from_secs(2),
        }
    }
}

impl SendPolicy {
    /// A policy that never retries (the pre-chaos behavior).
    pub fn one_shot() -> Self {
        Self {
            retries: 0,
            base_delay: Duration::ZERO,
            deadline: Duration::ZERO,
        }
    }

    /// Backoff before retry number `attempt` (1-based), with ±50%
    /// deterministic jitter derived from `salt` so concurrent
    /// retriers don't thundering-herd in lockstep.
    fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let base = self
            .base_delay
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let nanos = base.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        // SplitMix64 finalizer over (salt, attempt) for the jitter.
        let mut z = salt
            .wrapping_add(attempt as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
        // Scale into [0.5, 1.5) * base.
        let jittered = nanos / 2 + z % nanos.max(1);
        Duration::from_nanos(jittered)
    }
}

fn addr_salt(addr: &Addr) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in addr.to_string().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Retrying helpers over any [`Transport`]. Blanket-implemented, so
/// `Arc<dyn Transport>` gets these for free.
pub trait TransportExt: Transport {
    /// [`Transport::request`] with retry on transient failure.
    ///
    /// Returns the reply together with the number of retries that were
    /// needed (0 = first attempt succeeded), so callers can feed
    /// observability counters.
    fn request_with_retry(
        &self,
        addr: &Addr,
        frame: Frame,
        timeout: Duration,
        policy: &SendPolicy,
    ) -> Result<(Frame, u32), NetError> {
        let start = Instant::now();
        let salt = addr_salt(addr);
        let mut attempt = 0u32;
        loop {
            match self.request(addr, frame.clone(), timeout) {
                Ok(reply) => return Ok((reply, attempt)),
                Err(e) if e.is_transient() && attempt < policy.retries => {
                    let pause = policy.backoff(attempt + 1, salt);
                    if start.elapsed() + pause >= policy.deadline {
                        return Err(e);
                    }
                    std::thread::sleep(pause);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// PUSH with retry: obtains a *fresh* sender per attempt (a failed
    /// outbox can be permanently dead — e.g. a TCP writer whose
    /// connection broke), sends, and backs off on transient failure.
    ///
    /// Returns the number of retries needed.
    fn push_with_retry(
        &self,
        addr: &Addr,
        frame: Frame,
        policy: &SendPolicy,
    ) -> Result<u32, NetError> {
        let start = Instant::now();
        let salt = addr_salt(addr);
        let mut attempt = 0u32;
        loop {
            let res = self.sender(addr).and_then(|out| out.send(frame.clone()));
            match res {
                Ok(()) => return Ok(attempt),
                Err(e) if e.is_transient() && attempt < policy.retries => {
                    let pause = policy.backoff(attempt + 1, salt);
                    if start.elapsed() + pause >= policy.deadline {
                        return Err(e);
                    }
                    std::thread::sleep(pause);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl<T: Transport + ?Sized> TransportExt for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inproc::InProcTransport;
    use std::sync::Arc;

    #[test]
    fn transient_classification() {
        assert!(NetError::Timeout.is_transient());
        assert!(
            NetError::Io(std::io::Error::from(std::io::ErrorKind::ConnectionRefused))
                .is_transient()
        );
        assert!(!NetError::Disconnected.is_transient());
        assert!(!NetError::Protocol("x").is_transient());
        assert!(!NetError::Io(std::io::Error::from(std::io::ErrorKind::NotFound)).is_transient());
    }

    #[test]
    fn request_retries_until_server_appears() {
        let t = Arc::new(InProcTransport::new());
        let addr = Addr::inproc("tardy");
        let mb = t.bind(&addr).unwrap();
        // Server ignores the first request (it times out) and answers
        // the second. The first reply handle is held, not dropped: a
        // dropped handle surfaces Disconnected, which is fatal by
        // design and would not be retried.
        let server = std::thread::spawn(move || {
            let first = mb.recv().unwrap();
            let _unanswered = first.reply;
            let second = mb.recv().unwrap();
            second.reply.unwrap().send(Frame::signal(2)).unwrap();
        });
        let policy = SendPolicy {
            retries: 3,
            base_delay: Duration::from_millis(1),
            deadline: Duration::from_secs(5),
        };
        let (reply, retries) = t
            .request_with_retry(&addr, Frame::signal(1), Duration::from_millis(50), &policy)
            .unwrap();
        assert_eq!(reply.packet_type(), 2);
        assert_eq!(retries, 1);
        server.join().unwrap();
    }

    #[test]
    fn fatal_errors_do_not_retry() {
        let t = Arc::new(InProcTransport::new());
        let bad = Addr::parse("tcp://127.0.0.1:1").unwrap();
        let start = Instant::now();
        let err = t
            .request_with_retry(
                &bad,
                Frame::signal(1),
                Duration::from_millis(10),
                &SendPolicy::default(),
            )
            .unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)));
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "no backoff spent"
        );
    }

    #[test]
    fn deadline_caps_total_retry_time() {
        let t = Arc::new(InProcTransport::new());
        let addr = Addr::inproc("black-hole");
        let _mb = t.bind(&addr).unwrap(); // bound but never answers
        let policy = SendPolicy {
            retries: 1000,
            base_delay: Duration::from_millis(20),
            deadline: Duration::from_millis(100),
        };
        let start = Instant::now();
        let err = t
            .request_with_retry(&addr, Frame::signal(1), Duration::from_millis(10), &policy)
            .unwrap_err();
        assert!(matches!(err, NetError::Timeout));
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn push_with_retry_counts_attempts() {
        let t = Arc::new(InProcTransport::new());
        let addr = Addr::inproc("pushee");
        let mb = t.bind(&addr).unwrap();
        let retries = t
            .push_with_retry(&addr, Frame::signal(5), &SendPolicy::default())
            .unwrap();
        assert_eq!(retries, 0);
        assert_eq!(mb.recv().unwrap().frame.packet_type(), 5);
    }
}
