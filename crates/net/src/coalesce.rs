//! Coalescing outboxes: batch same-destination, same-packet-type
//! records into large frames before they hit the transport.
//!
//! The paper's throughput rests on batched traffic ("direct memory
//! copies into network buffers", §3.5); surveyed dynamic-graph systems
//! likewise identify message coalescing as the dominant throughput
//! lever. A [`CoalescingOutbox`] wraps one destination's [`Outbox`]
//! and keeps at most one *open frame* — packet type, caller-written
//! header, a record-count field, then appended records. Appending a
//! record of a different packet type (or with a different header)
//! first flushes the open frame, so the per-destination byte stream is
//! a strict FIFO of the appended records: coalescing changes frame
//! boundaries, never record order. That is what keeps sync-mode
//! results bit-identical with coalescing on or off.
//!
//! Flushes happen on four triggers, each counted in
//! [`CoalesceStats`]:
//!
//! * **size** — the open frame reached `max_bytes`;
//! * **count** — it reached `max_records`;
//! * **explicit** — a phase boundary called [`CoalescingOutbox::flush`]
//!   (agents flush before every READY/DRAIN report so barrier counters
//!   never run ahead of delivered frames);
//! * a different packet type or header displaced it (counted as
//!   `switch_flushes`).
//!
//! Backpressure is credit-based: each destination has an in-flight
//! byte budget. Sent frame sizes are tracked against the outbox's
//! queue depth ([`Outbox::queued`]); once the consumer drains a frame
//! its bytes are re-credited. A sender that exhausts the budget blocks
//! (bounding its peer's queue memory) and, past `block_timeout`,
//! spills anyway — liveness is preserved even if the peer died and the
//! failure detector has not yet evicted it.

use crate::frame::{pool_give, pool_take, Frame};
use crate::transport::{NetStats, Outbox};
use bytes::{BufMut, BytesMut};
use elga_trace::{flush_reason, EventKind, Tracer};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning for a [`CoalescingOutbox`].
#[derive(Debug, Clone)]
pub struct CoalesceConfig {
    /// Coalesce at all? When `false`, every appended record is sent
    /// eagerly as its own (count = 1) frame — the ablation baseline.
    pub enabled: bool,
    /// Flush the open frame once it holds this many payload bytes.
    pub max_bytes: usize,
    /// Flush the open frame once it holds this many records.
    pub max_records: u32,
    /// Per-destination in-flight byte budget; `0` disables
    /// backpressure (required for an agent's outbox to itself, which
    /// cannot drain while blocked on it).
    pub credit_bytes: usize,
    /// How long to block for credit before spilling anyway.
    pub block_timeout: Duration,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            enabled: true,
            // ~64 KiB frames: large enough to amortize per-frame costs,
            // small enough to keep latency and peak buffering modest.
            max_bytes: 60 * 1024,
            max_records: 4096,
            credit_bytes: 16 << 20,
            block_timeout: Duration::from_secs(2),
        }
    }
}

impl CoalesceConfig {
    /// The eager (no batching, no backpressure) configuration.
    pub fn disabled() -> Self {
        CoalesceConfig {
            enabled: false,
            credit_bytes: 0,
            ..CoalesceConfig::default()
        }
    }
}

/// Flush-reason and volume counters for one [`CoalescingOutbox`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Flushes triggered by `max_bytes`.
    pub size_flushes: u64,
    /// Flushes triggered by `max_records`.
    pub count_flushes: u64,
    /// Explicit phase-end flushes that found an open frame.
    pub explicit_flushes: u64,
    /// Flushes forced by a packet-type or header change.
    pub switch_flushes: u64,
    /// Times the sender had to wait for in-flight credit.
    pub backpressure_waits: u64,
    /// Frames actually handed to the transport.
    pub frames: u64,
    /// Records appended.
    pub records: u64,
    /// Bytes handed to the transport.
    pub bytes: u64,
}

impl CoalesceStats {
    /// Merge another outbox's counters into this one.
    pub fn absorb(&mut self, other: &CoalesceStats) {
        self.size_flushes += other.size_flushes;
        self.count_flushes += other.count_flushes;
        self.explicit_flushes += other.explicit_flushes;
        self.switch_flushes += other.switch_flushes;
        self.backpressure_waits += other.backpressure_waits;
        self.frames += other.frames;
        self.records += other.records;
        self.bytes += other.bytes;
    }
}

/// The frame currently accumulating records.
struct OpenFrame {
    buf: BytesMut,
    /// Offset of the little-endian `u32` record count within `buf`.
    count_at: usize,
    records: u32,
    packet_type: u8,
    /// Caller-chosen header fingerprint; a differing key displaces the
    /// open frame so records never land under the wrong header.
    key: u64,
}

/// A batching, credit-limited wrapper around one destination's
/// [`Outbox`]. See the module docs for semantics.
pub struct CoalescingOutbox {
    outbox: Outbox,
    cfg: CoalesceConfig,
    open: Option<OpenFrame>,
    /// Sizes of frames sent but (as far as we can tell) not yet taken
    /// off the queue by the consumer, oldest first.
    sent_sizes: VecDeque<usize>,
    in_flight: usize,
    stats: CoalesceStats,
    /// Frames the transport refused (peer gone). The owner drains
    /// these through its retry path.
    failed: Vec<Frame>,
    /// Optional per-owner traffic sink: every flushed frame is counted
    /// here by packet type (an agent passes its own [`NetStats`] so its
    /// metrics report per-type frames/bytes sent).
    sink: Option<std::sync::Arc<NetStats>>,
    /// Optional event tracer: flush reasons and backpressure waits are
    /// recorded into the owner's ring buffer. `None` (the default)
    /// keeps the hot append path free of even the atomic check.
    tracer: Option<Arc<Tracer>>,
}

impl CoalescingOutbox {
    /// Wrap `outbox` with the given tuning.
    pub fn new(outbox: Outbox, cfg: CoalesceConfig) -> Self {
        CoalescingOutbox {
            outbox,
            cfg,
            open: None,
            sent_sizes: VecDeque::new(),
            in_flight: 0,
            stats: CoalesceStats::default(),
            failed: Vec::new(),
            sink: None,
            tracer: None,
        }
    }

    /// Count every flushed frame (by packet type) into `sink` as well.
    pub fn with_net_stats(mut self, sink: std::sync::Arc<NetStats>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Record flush and backpressure events into `tracer` as well.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Trace one counted flush; called with the open frame still in
    /// place so the event carries its byte size.
    #[inline]
    fn trace_flush(&self, reason: u64) {
        if let Some(t) = &self.tracer {
            let bytes = self.open.as_ref().map_or(0, |o| o.buf.len() as u64);
            t.instant(EventKind::CoalesceFlush, reason, bytes);
        }
    }

    /// Append one record to the open `(packet_type, key)` frame,
    /// opening (and if necessary first flushing) as needed.
    ///
    /// `header` writes the frame's post-type header and runs only when
    /// a new frame is opened; the coalescer itself maintains the `u32`
    /// record count that follows the header. `record` writes one
    /// record's bytes. The resulting frames are byte-identical to
    /// eagerly encoded batches, so existing decoders are untouched.
    pub fn append(
        &mut self,
        packet_type: u8,
        key: u64,
        header: impl FnOnce(&mut BytesMut),
        record: impl FnOnce(&mut BytesMut),
    ) {
        let displaced = match &self.open {
            Some(open) => open.packet_type != packet_type || open.key != key,
            None => false,
        };
        if displaced {
            self.stats.switch_flushes += 1;
            self.trace_flush(flush_reason::SWITCH);
            self.flush_open();
        }
        if self.open.is_none() {
            let mut buf = pool_take(self.cfg.max_bytes.min(1 << 20) + 64);
            buf.put_u8(packet_type);
            header(&mut buf);
            let count_at = buf.len();
            buf.put_u32_le(0);
            self.open = Some(OpenFrame {
                buf,
                count_at,
                records: 0,
                packet_type,
                key,
            });
        }
        let open = self.open.as_mut().expect("just opened");
        record(&mut open.buf);
        open.records += 1;
        self.stats.records += 1;
        if !self.cfg.enabled {
            self.flush_open();
        } else if open.records >= self.cfg.max_records {
            self.stats.count_flushes += 1;
            self.trace_flush(flush_reason::COUNT);
            self.flush_open();
        } else if open.buf.len() >= self.cfg.max_bytes {
            self.stats.size_flushes += 1;
            self.trace_flush(flush_reason::SIZE);
            self.flush_open();
        }
    }

    /// Send a pre-built frame through this destination's stream. Any
    /// open frame is flushed first so record order stays FIFO.
    pub fn send(&mut self, frame: Frame) {
        if self.open.is_some() {
            self.stats.switch_flushes += 1;
            self.trace_flush(flush_reason::SWITCH);
            self.flush_open();
        }
        self.send_now(frame);
    }

    /// Phase-end flush: push the open frame (if any) to the transport.
    pub fn flush(&mut self) {
        if self.open.is_some() {
            self.stats.explicit_flushes += 1;
            self.trace_flush(flush_reason::EXPLICIT);
            self.flush_open();
        }
    }

    /// Records sitting in the open frame, not yet flushed.
    pub fn pending_records(&self) -> u32 {
        self.open.as_ref().map_or(0, |o| o.records)
    }

    /// Flush-reason and volume counters.
    pub fn stats(&self) -> &CoalesceStats {
        &self.stats
    }

    /// Bytes currently counted against the in-flight credit budget.
    pub fn in_flight_bytes(&mut self) -> usize {
        self.reclaim();
        self.in_flight
    }

    /// Frames the transport refused, for the owner's retry path.
    pub fn take_failed(&mut self) -> Vec<Frame> {
        std::mem::take(&mut self.failed)
    }

    /// Whether the underlying peer has refused a send.
    pub fn has_failed(&self) -> bool {
        !self.failed.is_empty()
    }

    fn flush_open(&mut self) {
        let Some(mut open) = self.open.take() else {
            return;
        };
        if open.records == 0 {
            pool_give(open.buf);
            return;
        }
        let count = open.records.to_le_bytes();
        open.buf[open.count_at..open.count_at + 4].copy_from_slice(&count);
        let frame = Frame::from_bytes(open.buf.split().freeze());
        pool_give(open.buf);
        self.send_now(frame);
    }

    /// Credit-check then hand the frame to the transport.
    fn send_now(&mut self, frame: Frame) {
        let len = frame.len();
        if self.cfg.credit_bytes > 0 {
            self.reclaim();
            if self.in_flight + len > self.cfg.credit_bytes {
                self.stats.backpressure_waits += 1;
                let waited_from = Instant::now();
                let deadline = waited_from + self.cfg.block_timeout;
                while self.in_flight + len > self.cfg.credit_bytes && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_micros(100));
                    self.reclaim();
                }
                // Past the deadline: spill to preserve liveness (the
                // peer may be dead; eviction is the detector's job).
                if let Some(t) = &self.tracer {
                    t.span(EventKind::BackpressureWait, waited_from, len as u64, 0);
                }
            }
        }
        self.stats.frames += 1;
        self.stats.bytes += len as u64;
        if let Some(sink) = &self.sink {
            sink.record_sent(frame.packet_type(), len);
        }
        match self.outbox.send(frame.clone()) {
            Ok(()) => {
                if self.cfg.credit_bytes > 0 {
                    self.sent_sizes.push_back(len);
                    self.in_flight += len;
                }
            }
            Err(_) => self.failed.push(frame),
        }
    }

    /// Re-credit frames the consumer has drained. The queue may carry
    /// other senders' deliveries too, so this is conservative: it only
    /// re-credits when the queue is provably shorter than our
    /// outstanding count — credit can lag (blocking a little extra)
    /// but never run ahead (overcommitting the peer).
    fn reclaim(&mut self) {
        let queued = self.outbox.queued();
        while self.sent_sizes.len() > queued {
            let len = self.sent_sizes.pop_front().expect("len checked");
            self.in_flight -= len;
        }
    }
}

impl std::fmt::Debug for CoalescingOutbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoalescingOutbox")
            .field("pending_records", &self.pending_records())
            .field("in_flight", &self.in_flight)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::inproc::InProcTransport;
    use crate::transport::Transport;

    fn pair(credit: usize) -> (crate::transport::Mailbox, CoalescingOutbox) {
        let t = InProcTransport::new();
        let addr = Addr::inproc("coalesce-test");
        let mb = t.bind(&addr).unwrap();
        let out = t.sender(&addr).unwrap();
        let cfg = CoalesceConfig {
            credit_bytes: credit,
            block_timeout: Duration::from_millis(50),
            ..CoalesceConfig::default()
        };
        (mb, CoalescingOutbox::new(out, cfg))
    }

    /// Append `n` 16-byte records under packet type 21 (VMSG-shaped:
    /// u64 run + u32 step header, u32 count, (u64, u64) records).
    fn append_n(c: &mut CoalescingOutbox, n: u64) {
        for i in 0..n {
            c.append(
                21,
                7,
                |h| {
                    h.put_u64_le(7);
                    h.put_u32_le(0);
                },
                |r| {
                    r.put_u64_le(i);
                    r.put_u64_le(i * 2);
                },
            );
        }
    }

    #[test]
    fn records_coalesce_into_one_frame() {
        let (mb, mut c) = pair(0);
        append_n(&mut c, 100);
        assert_eq!(mb.backlog(), 0, "nothing sent before flush");
        c.flush();
        let d = mb.recv().unwrap();
        assert_eq!(d.frame.packet_type(), 21);
        let mut r = d.frame.reader();
        assert_eq!(r.u64(), Some(7));
        assert_eq!(r.u32(), Some(0));
        assert_eq!(r.u32(), Some(100), "count patched at flush");
        assert_eq!(r.remaining(), 100 * 16);
        assert_eq!(c.stats().explicit_flushes, 1);
        assert_eq!(c.stats().records, 100);
    }

    #[test]
    fn count_threshold_flushes() {
        let (mb, mut c) = pair(0);
        c.cfg.max_bytes = usize::MAX;
        let max_records = u64::from(c.cfg.max_records);
        append_n(&mut c, max_records + 1);
        assert_eq!(mb.backlog(), 1);
        assert_eq!(c.stats().count_flushes, 1);
        assert_eq!(c.pending_records(), 1);
    }

    #[test]
    fn size_threshold_flushes() {
        let (mb, mut c) = pair(0);
        c.cfg.max_records = u32::MAX;
        let per_record = 16;
        let n = (c.cfg.max_bytes / per_record + 2) as u64;
        append_n(&mut c, n);
        assert_eq!(mb.backlog(), 1);
        assert_eq!(c.stats().size_flushes, 1);
    }

    #[test]
    fn type_or_key_switch_flushes() {
        let (mb, mut c) = pair(0);
        append_n(&mut c, 3);
        // Different header key: same type, new step.
        c.append(
            21,
            8,
            |h| {
                h.put_u64_le(7);
                h.put_u32_le(1);
            },
            |r| r.put_u64_le(1),
        );
        assert_eq!(mb.backlog(), 1);
        assert_eq!(c.stats().switch_flushes, 1);
        let d = mb.recv().unwrap();
        let mut r = d.frame.reader();
        r.u64();
        r.u32();
        assert_eq!(r.u32(), Some(3));
    }

    #[test]
    fn disabled_sends_each_record_eagerly() {
        let (mb, mut c) = pair(0);
        c.cfg.enabled = false;
        append_n(&mut c, 5);
        assert_eq!(mb.backlog(), 5);
        for _ in 0..5 {
            let d = mb.recv().unwrap();
            let mut r = d.frame.reader();
            r.u64();
            r.u32();
            assert_eq!(r.u32(), Some(1), "eager frames carry one record");
        }
    }

    #[test]
    fn passthrough_send_preserves_fifo() {
        let (mb, mut c) = pair(0);
        append_n(&mut c, 2);
        c.send(Frame::signal(9));
        c.flush();
        // Appended records must arrive before the passthrough frame.
        assert_eq!(mb.recv().unwrap().frame.packet_type(), 21);
        assert_eq!(mb.recv().unwrap().frame.packet_type(), 9);
    }

    #[test]
    fn backpressure_bounds_receiver_queue() {
        // Credit for ~4 full frames; a stalled receiver must cap the
        // sender's queue at the budget (plus one spilled frame after
        // the block timeout), not the full send volume.
        let frame_bytes = 60 * 1024;
        let credit = 4 * frame_bytes;
        let (mb, mut c) = pair(credit);
        let records = (16 * frame_bytes / 16) as u64; // ~16 frames' worth
        let sender = std::thread::spawn(move || {
            append_n(&mut c, records);
            c.flush();
            c
        });
        std::thread::sleep(Duration::from_millis(20));
        let stalled_backlog = mb.backlog();
        assert!(
            stalled_backlog <= credit / frame_bytes + 1,
            "stalled receiver saw {stalled_backlog} queued frames; credit allows ~4"
        );
        // Drain; the sender finishes and reports waits.
        let mut got = 0u64;
        while got < records {
            let d = mb.recv_timeout(Duration::from_secs(5)).unwrap();
            let mut r = d.frame.reader();
            r.u64();
            r.u32();
            got += u64::from(r.u32().unwrap());
        }
        let c = sender.join().unwrap();
        assert!(c.stats().backpressure_waits > 0, "sender never waited");
        assert_eq!(c.stats().records, records);
    }

    #[test]
    fn tracer_records_flush_reasons() {
        let (_mb, mut c) = pair(0);
        let tracer = Arc::new(Tracer::new(64));
        c = c.with_tracer(tracer.clone());
        c.cfg.max_bytes = usize::MAX;
        let max_records = u64::from(c.cfg.max_records);
        append_n(&mut c, max_records); // count flush
        c.append(
            22,
            7,
            |h| {
                h.put_u64_le(7);
                h.put_u32_le(0);
            },
            |r| r.put_u64_le(0),
        ); // opens a fresh type-22 frame (previous one already flushed)
        c.flush(); // explicit flush of the open type-22 frame
        let (events, dropped) = tracer.drain();
        assert_eq!(dropped, 0);
        let reasons: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == EventKind::CoalesceFlush)
            .map(|e| e.a)
            .collect();
        assert_eq!(reasons, vec![flush_reason::COUNT, flush_reason::EXPLICIT]);
        assert!(events.iter().all(|e| e.b > 0), "flush events carry bytes");
    }

    #[test]
    fn failed_sends_are_handed_back() {
        let t = InProcTransport::new();
        let addr = Addr::inproc("coalesce-dead");
        let mb = t.bind(&addr).unwrap();
        let out = t.sender(&addr).unwrap();
        drop(mb);
        let mut c = CoalescingOutbox::new(out, CoalesceConfig::default());
        append_n(&mut c, 3);
        c.flush();
        assert!(c.has_failed());
        let failed = c.take_failed();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].packet_type(), 21);
    }
}
