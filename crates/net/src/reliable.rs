//! At-least-once delivery with receiver-side dedup, layered over any
//! [`Transport`].
//!
//! ElGA's Mattern-style termination detection counts every data-plane
//! message sent and received; a single silently dropped (or duplicated)
//! PUSH frame unbalances those counters forever and wedges the
//! superstep barrier. [`ReliableTransport`] restores the exactly-once
//! *accounting* the algorithm needs on top of a lossy substrate:
//!
//! * every PUSH is wrapped in a `SEQ` envelope carrying a per-route
//!   sequence number and an acknowledgement return address;
//! * the receiving side ACKs each envelope, suppresses duplicates by
//!   sequence number, and forwards the original frames to the bound
//!   mailbox *in sequence order* — a frame that overtook a dropped
//!   predecessor is parked until the retransmit fills the hole. The
//!   FIFO matters beyond accounting: ZeroMQ (the paper's substrate)
//!   delivers per-route in order, and the asynchronous engine's
//!   replica state adoption is overwrite-based, so reordered state
//!   broadcasts would strand replicas on stale values;
//! * a retransmit thread re-sends unacknowledged envelopes with
//!   exponential backoff, giving up after [`GIVE_UP`] (at which point
//!   the peer is presumed dead — heartbeat-based failure detection in
//!   `elga-core` handles eviction).
//!
//! REQ/REP traffic and PUB/SUB broadcasts pass through untouched:
//! requests already surface loss as [`NetError::Timeout`] for the retry
//! layer, and the bus is treated as reliable (see `fault.rs`).
//!
//! Stack order for chaos testing: `Reliable(Faulty(inner))` — the ACKs
//! themselves then traverse the faulty layer, exercising retransmit and
//! dedup for real.

use crate::addr::Addr;
use crate::frame::Frame;
use crate::transport::{Delivery, Mailbox, NetError, Outbox, Publisher, Transport};
use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Packet type of the sequencing envelope. Top of the u8 range so it
/// can never collide with ElGA protocol packets (which grow upward
/// from 1).
pub const SEQ: u8 = 250;
/// Packet type of the acknowledgement frame.
pub const ACK: u8 = 251;

/// How long retransmission keeps trying before presuming the peer dead.
pub const GIVE_UP: Duration = Duration::from_secs(10);

const RETX_TICK: Duration = Duration::from_millis(10);
const INITIAL_RTO: Duration = Duration::from_millis(40);
const MAX_RTO: Duration = Duration::from_secs(1);

static NEXT_NONCE: AtomicU64 = AtomicU64::new(1);

fn addr_hash(addr: &Addr) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in addr.to_string().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// An envelope awaiting acknowledgement.
struct Pending {
    envelope: Frame,
    route: u64,
    next_retx: Instant,
    rto: Duration,
    deadline: Instant,
}

/// Per-(sender, route) dedup *and* reorder buffer: everything below
/// `floor` has been delivered; `held` parks admitted frames whose
/// predecessors are still in flight so delivery stays in sequence
/// order. ZeroMQ — the substrate the paper's system is built on —
/// guarantees per-route FIFO, and the asynchronous engine leans on it:
/// replica state adoption is overwrite-based, so two reordered state
/// broadcasts would leave a replica permanently stale. Sync mode only
/// needs the counting barriers, but async correctness needs FIFO too.
///
/// A hole at `floor` that persists past the sender's give-up horizon
/// can never be filled — the sender stopped retransmitting it — so the
/// window skips it rather than accumulating every later frame for the
/// life of the route.
#[derive(Default)]
struct ReorderWindow {
    floor: u64,
    held: HashMap<u64, Frame>,
    /// The hole currently blocking `floor`, and when it was first
    /// observed (i.e. when a later seq arrived while `floor` was
    /// still missing). `None` = no hole.
    stalled: Option<(u64, Instant)>,
}

impl ReorderWindow {
    /// Returns `None` when `seq` was already seen (duplicate), else the
    /// frames now deliverable, in sequence order — possibly empty if
    /// `frame` must wait for a predecessor. `horizon` is the
    /// sender-side give-up bound: a hole older than this is declared
    /// permanently lost and skipped, releasing the frames parked
    /// behind it.
    fn admit(
        &mut self,
        seq: u64,
        frame: Frame,
        now: Instant,
        horizon: Duration,
    ) -> Option<Vec<Frame>> {
        if seq < self.floor {
            return None;
        }
        match self.held.entry(seq) {
            std::collections::hash_map::Entry::Occupied(_) => return None,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(frame);
            }
        }
        let mut ready = Vec::new();
        self.drain(&mut ready);
        if self.held.is_empty() {
            self.stalled = None;
            return Some(ready);
        }
        match self.stalled {
            // The same hole is still blocking us; once it outlives the
            // give-up horizon the sender has abandoned it, so jump the
            // floor to the next seq we actually hold.
            Some((hole, since)) if hole == self.floor => {
                if now.duration_since(since) >= horizon {
                    if let Some(&next) = self.held.keys().min() {
                        self.floor = next;
                        self.drain(&mut ready);
                    }
                    self.stalled = (!self.held.is_empty()).then_some((self.floor, now));
                }
            }
            // A new hole (or the first one): start its clock.
            _ => self.stalled = Some((self.floor, now)),
        }
        Some(ready)
    }

    fn drain(&mut self, out: &mut Vec<Frame>) {
        while let Some(f) = self.held.remove(&self.floor) {
            out.push(f);
            self.floor += 1;
        }
    }
}

/// Counters describing the reliability machinery's work.
#[derive(Debug, Default)]
pub struct ReliableStats {
    retransmits: AtomicU64,
    gave_up: AtomicU64,
    dups_suppressed: AtomicU64,
}

impl ReliableStats {
    /// Envelopes re-sent after a missing ACK.
    pub fn retransmits(&self) -> u64 {
        self.retransmits.load(Ordering::Relaxed)
    }

    /// Envelopes abandoned after [`GIVE_UP`] (peer presumed dead).
    pub fn gave_up(&self) -> u64 {
        self.gave_up.load(Ordering::Relaxed)
    }

    /// Duplicate envelopes discarded by receivers.
    pub fn dups_suppressed(&self) -> u64 {
        self.dups_suppressed.load(Ordering::Relaxed)
    }
}

/// Shared mutable state between the transport handle, its relay
/// threads, and the retransmit thread.
struct Shared {
    inner: Arc<dyn Transport>,
    nonce: u64,
    ack_addr: Addr,
    stats: ReliableStats,
    /// Unacknowledged envelopes keyed by (route, seq).
    pending: Mutex<HashMap<(u64, u64), Pending>>,
    /// Next sequence number per route (routes are destination-address
    /// hashes, shared across all outboxes to the same destination).
    next_seq: Mutex<HashMap<u64, u64>>,
    /// Cached raw inner outboxes per route, for retransmission.
    route_out: Mutex<HashMap<u64, Outbox>>,
    /// Cached outboxes for sending ACKs back to each sender.
    ack_out: Mutex<HashMap<String, Outbox>>,
}

impl Shared {
    fn envelope(&self, route: u64, seq: u64, payload: &Frame) -> Frame {
        Frame::builder(SEQ)
            .u64(self.nonce)
            .u64(route)
            .u64(seq)
            .bytes(self.ack_addr.to_string().as_bytes())
            .bytes(payload.as_bytes())
            .finish()
    }
}

/// A decorator adding at-least-once PUSH delivery + dedup to any
/// [`Transport`]. See module docs.
pub struct ReliableTransport {
    shared: Arc<Shared>,
}

impl ReliableTransport {
    /// Wrap `inner`, binding the acknowledgement mailbox at an
    /// in-process address (sufficient whenever `inner` routes
    /// `inproc://` traffic; for pure-TCP deployments bind the ACK
    /// endpoint on a reachable address via
    /// [`ReliableTransport::with_ack_addr`]).
    pub fn new(inner: Arc<dyn Transport>) -> Result<Self, NetError> {
        let nonce = NEXT_NONCE.fetch_add(1, Ordering::Relaxed);
        let ack_addr = Addr::inproc(format!("reliable-ack-{nonce}"));
        Self::with_ack_addr(inner, ack_addr)
    }

    /// Wrap `inner`, binding the acknowledgement mailbox at `ack_addr`
    /// (must be bindable on `inner` and reachable by every peer).
    pub fn with_ack_addr(inner: Arc<dyn Transport>, ack_addr: Addr) -> Result<Self, NetError> {
        let ack_mb = inner.bind(&ack_addr)?;
        let nonce = NEXT_NONCE.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::new(Shared {
            inner,
            nonce,
            ack_addr: ack_mb.addr().clone(),
            stats: ReliableStats::default(),
            pending: Mutex::new(HashMap::new()),
            next_seq: Mutex::new(HashMap::new()),
            route_out: Mutex::new(HashMap::new()),
            ack_out: Mutex::new(HashMap::new()),
        });

        // ACK sink: each acknowledgement retires one pending envelope.
        let ack_shared = Arc::downgrade(&shared);
        std::thread::spawn(move || {
            while let Ok(d) = ack_mb.recv() {
                let Some(shared) = ack_shared.upgrade() else {
                    break;
                };
                let mut r = d.frame.reader();
                if d.frame.packet_type() != ACK {
                    continue;
                }
                let (Some(_nonce), Some(route), Some(seq)) = (r.u64(), r.u64(), r.u64()) else {
                    continue;
                };
                shared.pending.lock().remove(&(route, seq));
            }
        });

        // Retransmit loop: exits once the transport handle is dropped.
        let retx_shared = Arc::downgrade(&shared);
        std::thread::spawn(move || retransmit_loop(retx_shared));

        Ok(Self { shared })
    }

    /// Counters describing retransmits / give-ups / suppressed dups.
    pub fn stats(&self) -> &ReliableStats {
        &self.shared.stats
    }

    /// Number of envelopes still awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.shared.pending.lock().len()
    }
}

fn retransmit_loop(shared: Weak<Shared>) {
    loop {
        std::thread::sleep(RETX_TICK);
        let Some(shared) = shared.upgrade() else {
            return;
        };
        let now = Instant::now();
        let mut resend: Vec<(u64, Frame)> = Vec::new();
        {
            let mut pending = shared.pending.lock();
            pending.retain(|_, p| {
                if now >= p.deadline {
                    shared.stats.gave_up.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                if now >= p.next_retx {
                    resend.push((p.route, p.envelope.clone()));
                    p.rto = (p.rto * 2).min(MAX_RTO);
                    p.next_retx = now + p.rto;
                    shared.stats.retransmits.fetch_add(1, Ordering::Relaxed);
                }
                true
            });
        }
        for (route, envelope) in resend {
            let out = shared.route_out.lock().get(&route).cloned();
            if let Some(out) = out {
                // A failed resend means the destination mailbox is
                // gone; the give-up deadline will reap the entry.
                let _ = out.send(envelope);
            }
        }
    }
}

impl Transport for ReliableTransport {
    fn bind(&self, addr: &Addr) -> Result<Mailbox, NetError> {
        let inner_mb = self.shared.inner.bind(addr)?;
        let bound = inner_mb.addr().clone();
        let (tx, rx) = unbounded::<Delivery>();
        let shared = Arc::downgrade(&self.shared);
        std::thread::spawn(move || {
            // Dedup + reorder state per sending transport instance and
            // route.
            let mut windows: HashMap<(u64, u64), ReorderWindow> = HashMap::new();
            'relay: while let Ok(d) = inner_mb.recv() {
                if d.frame.packet_type() != SEQ {
                    // REQ deliveries, bus forwards, raw pushes: pass
                    // through untouched (reply handle intact).
                    if tx.send(d).is_err() {
                        break;
                    }
                    continue;
                }
                let Some(shared) = shared.upgrade() else {
                    break;
                };
                let mut r = d.frame.reader();
                let (Some(nonce), Some(route), Some(seq)) = (r.u64(), r.u64(), r.u64()) else {
                    continue;
                };
                let Some(ack_addr) = r.bytes().map(|b| String::from_utf8_lossy(b).into_owned())
                else {
                    continue;
                };
                let Some(payload) = r.bytes() else {
                    continue;
                };
                // Always acknowledge — the previous ACK may have been
                // the lost frame.
                let ack = Frame::builder(ACK).u64(nonce).u64(route).u64(seq).finish();
                let cached = shared.ack_out.lock().get(&ack_addr).cloned();
                let out = match cached {
                    Some(o) => Some(o),
                    None => match Addr::parse(&ack_addr)
                        .ok()
                        .and_then(|a| shared.inner.sender(&a).ok())
                    {
                        Some(o) => {
                            shared.ack_out.lock().insert(ack_addr.clone(), o.clone());
                            Some(o)
                        }
                        None => None,
                    },
                };
                if let Some(out) = out {
                    let _ = out.send(ack);
                }
                let frame = Frame::from_bytes(bytes::Bytes::copy_from_slice(payload));
                match windows.entry((nonce, route)).or_default().admit(
                    seq,
                    frame,
                    Instant::now(),
                    GIVE_UP,
                ) {
                    None => {
                        shared.stats.dups_suppressed.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(ready) => {
                        for f in ready {
                            if tx.send(Delivery::push(f)).is_err() {
                                break 'relay;
                            }
                        }
                    }
                }
            }
        });
        Ok(Mailbox {
            addr: bound,
            rx,
            stats: None,
        })
    }

    fn sender(&self, addr: &Addr) -> Result<Outbox, NetError> {
        let route = addr_hash(addr);
        let inner_out = self.shared.inner.sender(addr)?;
        self.shared
            .route_out
            .lock()
            .entry(route)
            .or_insert_with(|| inner_out.clone());
        let (tx, rx) = unbounded::<Delivery>();
        let shared = Arc::downgrade(&self.shared);
        std::thread::spawn(move || {
            while let Ok(d) = rx.recv() {
                let Some(shared) = shared.upgrade() else {
                    break;
                };
                let seq = {
                    let mut next = shared.next_seq.lock();
                    let slot = next.entry(route).or_insert(0);
                    let seq = *slot;
                    *slot += 1;
                    seq
                };
                let envelope = shared.envelope(route, seq, &d.frame);
                let now = Instant::now();
                shared.pending.lock().insert(
                    (route, seq),
                    Pending {
                        envelope: envelope.clone(),
                        route,
                        next_retx: now + INITIAL_RTO,
                        rto: INITIAL_RTO,
                        deadline: now + GIVE_UP,
                    },
                );
                if inner_out.send(envelope).is_err() {
                    // Destination mailbox gone; pending entries will be
                    // reaped by the give-up deadline.
                    break;
                }
            }
        });
        Ok(Outbox { tx, stats: None })
    }

    fn request(&self, addr: &Addr, frame: Frame, timeout: Duration) -> Result<Frame, NetError> {
        self.shared.inner.request(addr, frame, timeout)
    }

    fn bind_publisher(&self, addr: &Addr) -> Result<Publisher, NetError> {
        self.shared.inner.bind_publisher(addr)
    }

    fn subscribe(&self, addr: &Addr, topics: &[u8]) -> Result<Mailbox, NetError> {
        self.shared.inner.subscribe(addr, topics)
    }

    fn subscribe_forward(&self, addr: &Addr, topics: &[u8], target: &Addr) -> Result<(), NetError> {
        self.shared.inner.subscribe_forward(addr, topics, target)
    }

    fn net_stats(&self) -> Option<Arc<crate::transport::NetStats>> {
        self.shared.inner.net_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyTransport};
    use crate::inproc::InProcTransport;

    fn reliable_over_faulty(plan: FaultPlan, seed: u64) -> ReliableTransport {
        let inproc: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let faulty: Arc<dyn Transport> = Arc::new(FaultyTransport::new(inproc, plan, seed));
        ReliableTransport::new(faulty).unwrap()
    }

    fn collect(mb: &Mailbox, n: usize, budget: Duration) -> Vec<Frame> {
        let deadline = Instant::now() + budget;
        let mut got = Vec::new();
        while got.len() < n && Instant::now() < deadline {
            if let Ok(d) = mb.recv_timeout(Duration::from_millis(50)) {
                got.push(d.frame);
            }
        }
        got
    }

    #[test]
    fn lossless_when_substrate_is_clean() {
        let t = reliable_over_faulty(FaultPlan::default(), 0);
        let addr = Addr::inproc("clean");
        let mb = t.bind(&addr).unwrap();
        let out = t.sender(&addr).unwrap();
        for i in 0..100u64 {
            out.send(Frame::builder(1).u64(i).finish()).unwrap();
        }
        let got = collect(&mb, 100, Duration::from_secs(5));
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn recovers_every_frame_despite_drops_and_dups() {
        let plan = FaultPlan::uniform(0.2, 0.1, Duration::ZERO, Duration::from_micros(100));
        let t = reliable_over_faulty(plan, 99);
        let addr = Addr::inproc("lossy");
        let mb = t.bind(&addr).unwrap();
        let out = t.sender(&addr).unwrap();
        let n = 300u64;
        for i in 0..n {
            out.send(Frame::builder(7).u64(i).finish()).unwrap();
        }
        let got = collect(&mb, n as usize, Duration::from_secs(30));
        assert_eq!(got.len(), n as usize, "every frame must arrive");
        let seen: Vec<u64> = got
            .iter()
            .map(|f| {
                assert_eq!(f.packet_type(), 7);
                f.reader().u64().unwrap()
            })
            .collect();
        assert_eq!(
            seen,
            (0..n).collect::<Vec<u64>>(),
            "exactly once, no dups, and in send order"
        );
        assert!(t.stats().retransmits() > 0, "drops must force retransmits");
    }

    #[test]
    fn req_rep_passes_through() {
        let t = reliable_over_faulty(FaultPlan::default(), 0);
        let addr = Addr::inproc("server");
        let mb = t.bind(&addr).unwrap();
        let handle = std::thread::spawn(move || {
            let d = mb.recv().unwrap();
            assert_eq!(d.frame.packet_type(), 9);
            d.reply.unwrap().send(Frame::signal(10)).unwrap();
        });
        let rep = t
            .request(&addr, Frame::signal(9), Duration::from_secs(5))
            .unwrap();
        assert_eq!(rep.packet_type(), 10);
        handle.join().unwrap();
    }

    fn tagged(s: u64) -> Frame {
        Frame::builder(1).u64(s).finish()
    }

    fn tags(frames: &[Frame]) -> Vec<u64> {
        frames.iter().map(|f| f.reader().u64().unwrap()).collect()
    }

    #[test]
    fn reorder_window_delivers_in_sequence_order() {
        let mut w = ReorderWindow::default();
        let t0 = Instant::now();
        let h = Duration::from_secs(10);
        assert_eq!(tags(&w.admit(0, tagged(0), t0, h).unwrap()), [0]);
        // 2 and 3 overtake 1: parked, nothing deliverable yet.
        assert_eq!(w.admit(2, tagged(2), t0, h).unwrap(), []);
        assert_eq!(w.admit(3, tagged(3), t0, h).unwrap(), []);
        // The hole fills: the whole backlog drains in order.
        assert_eq!(tags(&w.admit(1, tagged(1), t0, h).unwrap()), [1, 2, 3]);
        assert_eq!(w.floor, 4);
        assert!(w.held.is_empty());
    }

    #[test]
    fn reorder_window_skips_holes_older_than_the_give_up_horizon() {
        let mut w = ReorderWindow::default();
        let t0 = Instant::now();
        let h = Duration::from_millis(50);
        assert_eq!(tags(&w.admit(0, tagged(0), t0, h).unwrap()), [0]);
        // seq 1 is lost forever (sender gave up); later seqs park
        // behind the hole.
        for s in 2..100 {
            assert_eq!(w.admit(s, tagged(s), t0, h).unwrap(), []);
        }
        assert_eq!(w.floor, 1);
        assert_eq!(w.held.len(), 98, "backlog parked while the hole is live");
        // Horizon passes: the next admit declares seq 1 lost, jumps the
        // floor, and releases the backlog in order.
        let released = w.admit(100, tagged(100), t0 + h, h).unwrap();
        assert_eq!(tags(&released), (2..=100).collect::<Vec<u64>>());
        assert_eq!(w.floor, 101);
        assert!(w.held.is_empty(), "skipped hole must release the backlog");
        // The lost seq arriving absurdly late is still suppressed.
        assert!(w.admit(1, tagged(1), t0 + h, h).is_none());
        // A fresh hole starts its own clock rather than reusing the
        // expired one.
        assert_eq!(w.admit(102, tagged(102), t0 + h, h).unwrap(), []);
        assert_eq!(w.floor, 101);
        assert_eq!(
            w.admit(103, tagged(103), t0 + h + Duration::from_millis(1), h)
                .unwrap(),
            []
        );
        assert_eq!(w.floor, 101, "new hole must wait out its own horizon");
        assert_eq!(
            tags(&w.admit(104, tagged(104), t0 + h + h, h).unwrap()),
            [102, 103, 104]
        );
        assert_eq!(w.floor, 105);
    }

    #[test]
    fn reorder_window_suppresses_dups_without_a_hole() {
        let mut w = ReorderWindow::default();
        let t0 = Instant::now();
        let h = Duration::from_secs(10);
        for s in 0..10 {
            assert_eq!(tags(&w.admit(s, tagged(s), t0, h).unwrap()), [s]);
            assert!(
                w.admit(s, tagged(s), t0, h).is_none(),
                "second sighting is a dup"
            );
        }
        assert_eq!(w.floor, 10);
        assert!(w.held.is_empty());
    }

    #[test]
    fn reorder_window_suppresses_dups_of_parked_frames() {
        let mut w = ReorderWindow::default();
        let t0 = Instant::now();
        let h = Duration::from_secs(10);
        assert_eq!(w.admit(1, tagged(1), t0, h).unwrap(), []);
        assert!(
            w.admit(1, tagged(1), t0, h).is_none(),
            "retransmit of a parked frame is a dup"
        );
        assert_eq!(tags(&w.admit(0, tagged(0), t0, h).unwrap()), [0, 1]);
    }

    #[test]
    fn in_flight_drains_after_acks() {
        let t = reliable_over_faulty(FaultPlan::default(), 0);
        let addr = Addr::inproc("drain");
        let mb = t.bind(&addr).unwrap();
        let out = t.sender(&addr).unwrap();
        for _ in 0..20 {
            out.send(Frame::signal(1)).unwrap();
        }
        let _ = collect(&mb, 20, Duration::from_secs(5));
        let deadline = Instant::now() + Duration::from_secs(5);
        while t.in_flight() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(t.in_flight(), 0, "ACKs must retire all pending frames");
    }
}
