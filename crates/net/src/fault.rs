//! Fault injection below the [`Transport`] trait.
//!
//! [`FaultyTransport`] wraps any backend and perturbs point-to-point
//! traffic according to a seeded [`FaultPlan`]: messages may be
//! dropped, delayed, or duplicated, and whole endpoints can be cut off
//! to simulate a crashed peer. Because the faults are injected *below*
//! the trait, the in-process and TCP backends are exercised through
//! exactly the same chaos machinery, and a fixed seed makes every run
//! deterministic for a given interleaving of sends per route.
//!
//! Scope: faults apply to PUSH (`sender`) and REQ (`request`) traffic —
//! the data plane. PUB/SUB subscriptions (`subscribe` /
//! `subscribe_forward`) pass through unfaulted: the bus carries
//! low-rate control broadcasts (views, barrier advances, shutdown) and
//! ElGA's correctness argument assumes the directory broadcast channel
//! is reliable, so chaos is focused on the high-volume vertex/edge
//! traffic where loss actually happens in practice.

use crate::addr::Addr;
use crate::frame::Frame;
use crate::transport::{Delivery, Mailbox, NetError, Outbox, Publisher, Transport};
use crossbeam::channel::{unbounded, RecvTimeoutError};
use parking_lot::Mutex;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fault parameters for one route (one destination address).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteFault {
    /// Probability in `[0, 1]` that a pushed frame is silently dropped.
    pub drop: f64,
    /// Probability in `[0, 1]` that a pushed frame is delivered twice.
    pub duplicate: f64,
    /// Lower bound of the uniform per-frame delivery delay.
    pub delay_min: Duration,
    /// Upper bound of the uniform per-frame delivery delay.
    pub delay_max: Duration,
}

impl Default for RouteFault {
    fn default() -> Self {
        Self {
            drop: 0.0,
            duplicate: 0.0,
            delay_min: Duration::ZERO,
            delay_max: Duration::ZERO,
        }
    }
}

impl RouteFault {
    fn delays(&self) -> bool {
        self.delay_max > Duration::ZERO
    }

    fn is_benign(&self) -> bool {
        *self == Self::default()
    }

    fn sample_delay(&self, rng: &mut SplitMix64) -> Duration {
        let span = (self.delay_max.saturating_sub(self.delay_min)).as_micros() as u64;
        self.delay_min + Duration::from_micros(rng.below(span.max(1)))
    }
}

/// A plan describing which faults to inject where.
///
/// The base fault applies to every route; `per_route` entries override
/// the base for specific destination addresses.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Fault applied to every route without a more specific entry.
    pub base: RouteFault,
    /// Per-destination overrides, matched by exact address.
    pub per_route: Vec<(Addr, RouteFault)>,
}

impl FaultPlan {
    /// A plan that drops/dups/delays uniformly on every route.
    pub fn uniform(drop: f64, duplicate: f64, delay_min: Duration, delay_max: Duration) -> Self {
        Self {
            base: RouteFault {
                drop,
                duplicate,
                delay_min,
                delay_max,
            },
            per_route: Vec::new(),
        }
    }

    /// Override the fault parameters for one destination address.
    pub fn route(mut self, addr: Addr, fault: RouteFault) -> Self {
        self.per_route.push((addr, fault));
        self
    }

    fn for_addr(&self, addr: &Addr) -> RouteFault {
        self.per_route
            .iter()
            .find(|(a, _)| a == addr)
            .map(|(_, f)| *f)
            .unwrap_or(self.base)
    }
}

/// Counters describing what the fault layer actually did.
#[derive(Debug, Default)]
pub struct FaultStats {
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    rejected: AtomicU64,
}

impl FaultStats {
    /// Frames silently discarded.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Frames delivered twice.
    pub fn duplicated(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }

    /// Frames whose delivery was artificially delayed.
    pub fn delayed(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }

    /// Sends/requests refused because the destination was cut.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

/// SplitMix64: tiny, seedable, good-enough PRNG so `elga-net` does not
/// grow a `rand` dependency just for chaos testing. Public because the
/// checkpoint store's disk-fault injector reuses the same stream.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`; the same seed yields the same
    /// sequence forever.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform u64 in [0, bound).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Storage-fault parameters for checkpoint writes — the disk analog of
/// [`RouteFault`]. Probabilities are rolled once per file write from a
/// seeded [`SplitMix64`], so a fixed seed makes the fault sequence on a
/// given writer deterministic.
///
/// Faults model a *lying* disk: the writer is not told its file is
/// damaged, exactly as a powered-off drive cache or a crash between
/// `write` and `fsync` behaves. The damage is only discoverable by
/// reading the file back and checking its length and checksum, which is
/// precisely what the checkpoint commit scrub and the restore-time
/// validation do.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DiskFault {
    /// Probability in `[0, 1]` that a write is torn: only a prefix of
    /// the bytes reaches the file (a crash mid-write).
    pub torn_write: f64,
    /// Probability in `[0, 1]` that one byte of the written file is
    /// flipped (silent media corruption).
    pub corrupt: f64,
}

impl DiskFault {
    /// A plan that tears and corrupts with the given probabilities.
    pub fn new(torn_write: f64, corrupt: f64) -> Self {
        Self {
            torn_write,
            corrupt,
        }
    }

    /// True when no fault can ever fire.
    pub fn is_benign(&self) -> bool {
        self.torn_write <= 0.0 && self.corrupt <= 0.0
    }
}

fn addr_hash(addr: &Addr) -> u64 {
    // FNV-1a over the display form: stable across runs and processes.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in addr.to_string().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A decorator that injects seeded faults into any [`Transport`].
///
/// Each route (destination address) gets its own PRNG stream seeded
/// from `seed ^ hash(addr)`, so the fault sequence on a route depends
/// only on the seed and the order of sends *on that route* — not on
/// when other routes were created or used.
pub struct FaultyTransport {
    inner: Arc<dyn Transport>,
    plan: FaultPlan,
    seed: u64,
    stats: Arc<FaultStats>,
    cut: Arc<Mutex<HashSet<Addr>>>,
}

impl FaultyTransport {
    /// Wrap `inner`, applying `plan` with the given RNG `seed`.
    pub fn new(inner: Arc<dyn Transport>, plan: FaultPlan, seed: u64) -> Self {
        Self {
            inner,
            plan,
            seed,
            stats: Arc::new(FaultStats::default()),
            cut: Arc::new(Mutex::new(HashSet::new())),
        }
    }

    /// Counters describing the injected faults so far.
    pub fn stats(&self) -> Arc<FaultStats> {
        self.stats.clone()
    }

    /// Simulate a crashed peer: all subsequent sends and requests to
    /// `addr` fail (requests with [`NetError::Disconnected`], pushes by
    /// silent discard, which is what a crashed TCP peer looks like to a
    /// PUSH socket).
    ///
    /// Note: outboxes created by [`Transport::sender`] *before* the cut
    /// honor it only if their route carries a non-benign fault (benign
    /// routes hand out the raw inner outbox for speed).
    pub fn disconnect(&self, addr: &Addr) {
        self.cut.lock().insert(addr.clone());
    }

    /// Undo [`FaultyTransport::disconnect`].
    pub fn reconnect(&self, addr: &Addr) {
        self.cut.lock().remove(addr);
    }

    fn is_cut(&self, addr: &Addr) -> bool {
        self.cut.lock().contains(addr)
    }
}

impl Transport for FaultyTransport {
    fn bind(&self, addr: &Addr) -> Result<Mailbox, NetError> {
        self.inner.bind(addr)
    }

    fn sender(&self, addr: &Addr) -> Result<Outbox, NetError> {
        let fault = self.plan.for_addr(addr);
        if fault.is_benign() {
            // Nothing to inject on this route: hand out the raw outbox.
            return self.inner.sender(addr);
        }
        let inner_out = self.inner.sender(addr)?;
        let (tx, rx) = unbounded::<Delivery>();
        let mut rng = SplitMix64::new(self.seed ^ addr_hash(addr));
        let stats = self.stats.clone();
        let cut = self.cut.clone();
        let dest = addr.clone();
        std::thread::spawn(move || {
            // Faults are rolled when a frame *arrives* and delivery is
            // scheduled for `arrival + delay`, so delays on different
            // frames overlap. Sleeping in-line per frame would cap the
            // route's throughput at 1/mean-delay and congest under
            // load, which is not the fault being modelled: the model
            // is per-frame latency, not a slow link.
            let mut pending: VecDeque<(Instant, Delivery)> = VecDeque::new();
            'relay: loop {
                let now = Instant::now();
                while pending.front().is_some_and(|(due, _)| *due <= now) {
                    let (_, d) = pending.pop_front().expect("checked front");
                    if inner_out.tx.send(d).is_err() {
                        break 'relay;
                    }
                }
                let d = match pending.front() {
                    Some((due, _)) => {
                        let wait = due.saturating_duration_since(Instant::now());
                        match rx.recv_timeout(wait) {
                            Ok(d) => d,
                            Err(RecvTimeoutError::Timeout) => continue,
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    }
                    None => match rx.recv() {
                        Ok(d) => d,
                        Err(_) => break,
                    },
                };
                if cut.lock().contains(&dest) {
                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if fault.drop > 0.0 && rng.next_f64() < fault.drop {
                    stats.dropped.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let mut due = Instant::now();
                if fault.delays() {
                    due += fault.sample_delay(&mut rng);
                    stats.delayed.fetch_add(1, Ordering::Relaxed);
                }
                let dup = fault.duplicate > 0.0 && rng.next_f64() < fault.duplicate;
                let frame = d.frame.clone();
                // push_back keeps arrival order, so the route stays
                // FIFO (a later frame never overtakes an earlier one,
                // it just inherits at most the head's residual delay).
                pending.push_back((due, d));
                if dup {
                    stats.duplicated.fetch_add(1, Ordering::Relaxed);
                    pending.push_back((due, Delivery::push(frame)));
                }
            }
            // Senders are gone; flush what is already scheduled so the
            // tail of a burst is not silently lost on shutdown.
            for (due, d) in pending {
                let wait = due.saturating_duration_since(Instant::now());
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
                if inner_out.tx.send(d).is_err() {
                    break;
                }
            }
        });
        Ok(Outbox { tx, stats: None })
    }

    fn request(&self, addr: &Addr, frame: Frame, timeout: Duration) -> Result<Frame, NetError> {
        if self.is_cut(addr) {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(NetError::Disconnected);
        }
        let fault = self.plan.for_addr(addr);
        // REQ/REP is at-most-once by construction (one reply channel),
        // so duplication does not apply; a dropped request surfaces as
        // a timeout the retry layer must absorb.
        let mut rng = SplitMix64::new(self.seed ^ addr_hash(addr).rotate_left(17));
        if fault.drop > 0.0 && rng.next_f64() < fault.drop {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(timeout.min(Duration::from_millis(10)));
            return Err(NetError::Timeout);
        }
        if fault.delays() {
            std::thread::sleep(fault.sample_delay(&mut rng));
            self.stats.delayed.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.request(addr, frame, timeout)
    }

    fn bind_publisher(&self, addr: &Addr) -> Result<Publisher, NetError> {
        self.inner.bind_publisher(addr)
    }

    fn subscribe(&self, addr: &Addr, topics: &[u8]) -> Result<Mailbox, NetError> {
        self.inner.subscribe(addr, topics)
    }

    fn net_stats(&self) -> Option<std::sync::Arc<crate::transport::NetStats>> {
        self.inner.net_stats()
    }

    fn subscribe_forward(&self, addr: &Addr, topics: &[u8], target: &Addr) -> Result<(), NetError> {
        // Control-plane broadcasts bypass fault injection; see module
        // docs. Forward straight through the inner transport so the
        // target's mailbox receives unfaulted bus traffic.
        self.inner.subscribe_forward(addr, topics, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inproc::InProcTransport;

    fn chaos(plan: FaultPlan, seed: u64) -> FaultyTransport {
        FaultyTransport::new(Arc::new(InProcTransport::new()), plan, seed)
    }

    fn drain(mb: &Mailbox, wait: Duration) -> usize {
        let mut n = 0;
        while mb.recv_timeout(wait).is_ok() {
            n += 1;
        }
        n
    }

    #[test]
    fn drops_are_seeded_and_deterministic() {
        let counts: Vec<usize> = (0..2)
            .map(|_| {
                let t = chaos(
                    FaultPlan::uniform(0.3, 0.0, Duration::ZERO, Duration::ZERO),
                    42,
                );
                let addr = Addr::inproc("sink");
                let mb = t.bind(&addr).unwrap();
                let out = t.sender(&addr).unwrap();
                for _ in 0..200 {
                    out.send(Frame::signal(1)).unwrap();
                }
                drain(&mb, Duration::from_millis(200))
            })
            .collect();
        assert_eq!(counts[0], counts[1]);
        assert!(counts[0] < 200, "some frames must be dropped");
        assert!(counts[0] > 100, "drop rate should be ~30%, not more");
    }

    #[test]
    fn duplicates_deliver_twice() {
        let t = chaos(
            FaultPlan::uniform(0.0, 1.0, Duration::ZERO, Duration::ZERO),
            7,
        );
        let addr = Addr::inproc("dup");
        let mb = t.bind(&addr).unwrap();
        let out = t.sender(&addr).unwrap();
        for _ in 0..10 {
            out.send(Frame::signal(2)).unwrap();
        }
        assert_eq!(drain(&mb, Duration::from_millis(200)), 20);
        assert_eq!(t.stats().duplicated(), 10);
    }

    #[test]
    fn disconnect_rejects_requests_and_swallows_pushes() {
        let t = chaos(
            FaultPlan::uniform(0.0, 0.0, Duration::ZERO, Duration::from_micros(1)),
            1,
        );
        let addr = Addr::inproc("dead");
        let mb = t.bind(&addr).unwrap();
        t.disconnect(&addr);
        assert!(matches!(
            t.request(&addr, Frame::signal(1), Duration::from_millis(20)),
            Err(NetError::Disconnected)
        ));
        let out = t.sender(&addr).unwrap();
        out.send(Frame::signal(1)).unwrap();
        assert_eq!(drain(&mb, Duration::from_millis(100)), 0);
        t.reconnect(&addr);
        out.send(Frame::signal(1)).unwrap();
        assert_eq!(drain(&mb, Duration::from_millis(200)), 1);
        assert!(t.stats().rejected() >= 2);
    }

    #[test]
    fn benign_routes_pass_through_untouched() {
        let t = chaos(FaultPlan::default(), 0);
        let addr = Addr::inproc("clean");
        let mb = t.bind(&addr).unwrap();
        let out = t.sender(&addr).unwrap();
        for _ in 0..50 {
            out.send(Frame::signal(1)).unwrap();
        }
        assert_eq!(mb.backlog(), 50);
        assert_eq!(t.stats().dropped(), 0);
    }

    #[test]
    fn per_route_overrides_beat_base() {
        let spared = Addr::inproc("spared");
        let plan = FaultPlan::uniform(1.0, 0.0, Duration::ZERO, Duration::ZERO)
            .route(spared.clone(), RouteFault::default());
        let t = chaos(plan, 3);
        let doomed = Addr::inproc("doomed");
        let mb_doomed = t.bind(&doomed).unwrap();
        let mb_spared = t.bind(&spared).unwrap();
        t.sender(&doomed).unwrap().send(Frame::signal(1)).unwrap();
        t.sender(&spared).unwrap().send(Frame::signal(1)).unwrap();
        assert_eq!(drain(&mb_spared, Duration::from_millis(100)), 1);
        assert_eq!(drain(&mb_doomed, Duration::from_millis(100)), 0);
    }
}
