//! Shared-nothing messaging substrate for ElGA (paper §3.5).
//!
//! The paper builds on ZeroMQ and uses exactly three communication
//! patterns, all reproduced here:
//!
//! * **REQ/REP** for low-latency blocking client queries
//!   ([`Transport::request`]);
//! * **PUSH** for medium-latency non-blocking sends, with explicit
//!   acknowledgements sent as a PUSH in return ([`Transport::sender`] /
//!   [`Outbox::send`]);
//! * **PUB/SUB** for high-latency broadcasts — directory updates and
//!   synchronization barriers — filtered by the *first byte* of each
//!   message, ElGA's packet type ([`Transport::bind_publisher`] /
//!   [`Transport::subscribe`]).
//!
//! Two interchangeable backends implement the [`Transport`] trait:
//!
//! * [`inproc::InProcTransport`] — crossbeam channels inside one
//!   process. This is the default for the scaled-down cluster
//!   simulation (ZeroMQ's `inproc://` analog).
//! * [`tcp::TcpTransport`] — length-prefixed frames over real sockets
//!   (`tcp://` analog), exercising the identical wire protocol across
//!   OS connections; used by the cross-process example and the §3.5
//!   latency benchmark.
//!
//! Every message is a [`Frame`]: a byte buffer whose first byte is the
//! packet type, exactly as in the paper ("The first byte of any message
//! is a packet type", §3.5).

#![warn(missing_docs)]

pub mod addr;
pub mod coalesce;
pub mod fault;
pub mod frame;
pub mod inproc;
pub mod reliable;
pub mod retry;
mod rx;
pub mod tcp;
pub mod transport;

pub use addr::Addr;
pub use coalesce::{CoalesceConfig, CoalesceStats, CoalescingOutbox};
pub use fault::{DiskFault, FaultPlan, FaultStats, FaultyTransport, RouteFault, SplitMix64};
pub use frame::{Frame, FrameReader};
pub use inproc::InProcTransport;
pub use reliable::ReliableTransport;
pub use retry::{SendPolicy, TransportExt};
pub use tcp::TcpTransport;
pub use transport::{
    Delivery, Mailbox, NetError, NetStats, Outbox, Publisher, ReplyHandle, Transport,
};
