//! Endpoint addresses.
//!
//! ElGA configures ZeroMQ "to use TCP between nodes and its
//! interprocess protocol within a node" (§3.5); we mirror the two
//! schemes with `inproc://name` and `tcp://host:port`.

use std::fmt;
use std::net::SocketAddr;

/// Address of a bindable endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Addr {
    /// In-process endpoint, identified by name.
    Inproc(String),
    /// TCP endpoint.
    Tcp(SocketAddr),
}

impl Addr {
    /// An in-process address.
    pub fn inproc(name: impl Into<String>) -> Self {
        Addr::Inproc(name.into())
    }

    /// A TCP address.
    pub fn tcp(addr: SocketAddr) -> Self {
        Addr::Tcp(addr)
    }

    /// Parse `inproc://name` or `tcp://ip:port`.
    pub fn parse(s: &str) -> Result<Self, AddrParseError> {
        if let Some(name) = s.strip_prefix("inproc://") {
            if name.is_empty() {
                return Err(AddrParseError(s.to_string()));
            }
            return Ok(Addr::Inproc(name.to_string()));
        }
        if let Some(hostport) = s.strip_prefix("tcp://") {
            return hostport
                .parse()
                .map(Addr::Tcp)
                .map_err(|_| AddrParseError(s.to_string()));
        }
        Err(AddrParseError(s.to_string()))
    }

    /// The `inproc` name, if this is an in-process address.
    pub fn as_inproc(&self) -> Option<&str> {
        match self {
            Addr::Inproc(n) => Some(n),
            Addr::Tcp(_) => None,
        }
    }

    /// The socket address, if this is a TCP address.
    pub fn as_tcp(&self) -> Option<SocketAddr> {
        match self {
            Addr::Inproc(_) => None,
            Addr::Tcp(a) => Some(*a),
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Inproc(n) => write!(f, "inproc://{n}"),
            Addr::Tcp(a) => write!(f, "tcp://{a}"),
        }
    }
}

/// Error parsing an address string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrParseError(pub String);

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address: {}", self.0)
    }
}

impl std::error::Error for AddrParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_inproc() {
        let a = Addr::parse("inproc://agent-3").unwrap();
        assert_eq!(a, Addr::inproc("agent-3"));
        assert_eq!(a.as_inproc(), Some("agent-3"));
        assert_eq!(a.to_string(), "inproc://agent-3");
        assert!(a.as_tcp().is_none());
    }

    #[test]
    fn parse_tcp() {
        let a = Addr::parse("tcp://127.0.0.1:5555").unwrap();
        assert_eq!(a.as_tcp().unwrap().port(), 5555);
        assert_eq!(a.to_string(), "tcp://127.0.0.1:5555");
        assert!(a.as_inproc().is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Addr::parse("inproc://").is_err());
        assert!(Addr::parse("tcp://notanaddr").is_err());
        assert!(Addr::parse("http://x").is_err());
        assert!(Addr::parse("").is_err());
    }

    #[test]
    fn roundtrip_display_parse() {
        for s in ["inproc://d0", "tcp://10.0.0.1:9999"] {
            assert_eq!(Addr::parse(s).unwrap().to_string(), s);
        }
    }
}
