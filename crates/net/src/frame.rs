//! Message frames.
//!
//! "The first byte of any message is a packet type which determines how
//! a Participant will handle the message. ElGA's protocols typically
//! involve direct memory copies into ZeroMQ's network buffers" (§3.5).
//! A [`Frame`] is a cheaply cloneable byte buffer (`bytes::Bytes`)
//! whose first byte is the packet type; [`Frame::builder`] and
//! [`FrameReader`] provide the fixed-width little-endian serialization
//! the protocols use.

use bytes::{BufMut, Bytes, BytesMut};
use std::cell::RefCell;

/// Build buffers larger than this are not returned to the thread-local
/// pool — one oversized broadcast must not pin megabytes per thread.
const POOL_MAX_RETAINED: usize = 1 << 20;

/// Buffers kept per thread. Frame construction is single-buffer deep
/// on every path (builders don't nest), so a small stack suffices.
const POOL_DEPTH: usize = 8;

thread_local! {
    static POOL: RefCell<Vec<BytesMut>> = const { RefCell::new(Vec::new()) };
}

/// Take a build buffer from the thread-local pool (or allocate one).
///
/// `reserve` reclaims the buffer's original allocation once every
/// [`Bytes`] split off by previous [`FrameBuilder::finish`] calls has
/// been dropped — the steady state of a send loop — so repeated frame
/// construction on one thread recycles a single allocation instead of
/// hitting the allocator per frame.
pub(crate) fn pool_take(capacity: usize) -> BytesMut {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.reserve(capacity);
    buf
}

/// Return a (now empty) build buffer to the thread-local pool.
pub(crate) fn pool_give(buf: BytesMut) {
    if buf.capacity() > POOL_MAX_RETAINED {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < POOL_DEPTH {
            p.push(buf);
        }
    });
}

/// Buffers currently pooled on this thread (test observability).
#[cfg(test)]
pub(crate) fn pool_depth() -> usize {
    POOL.with(|p| p.borrow().len())
}

/// An immutable wire message. Clones share the underlying buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    bytes: Bytes,
}

impl Frame {
    /// Frame from raw bytes.
    ///
    /// # Panics
    /// Panics on an empty buffer — every ElGA message carries at least
    /// its packet-type byte.
    pub fn from_bytes(bytes: Bytes) -> Self {
        assert!(!bytes.is_empty(), "frames must carry a packet type");
        Frame { bytes }
    }

    /// Start building a frame with the given packet type.
    ///
    /// The build buffer comes from a thread-local pool: once the frames
    /// split off earlier on this thread have been dropped, their
    /// allocation is reclaimed and reused, so steady-state send loops
    /// do not allocate per frame.
    pub fn builder(packet_type: u8) -> FrameBuilder {
        let mut buf = pool_take(64);
        buf.put_u8(packet_type);
        FrameBuilder { buf }
    }

    /// A frame carrying only its packet type.
    pub fn signal(packet_type: u8) -> Frame {
        Frame::builder(packet_type).finish()
    }

    /// The packet type (first byte).
    #[inline]
    pub fn packet_type(&self) -> u8 {
        self.bytes[0]
    }

    /// The payload after the packet type.
    #[inline]
    pub fn payload(&self) -> &[u8] {
        &self.bytes[1..]
    }

    /// Reader positioned at the start of the payload.
    #[inline]
    pub fn reader(&self) -> FrameReader<'_> {
        FrameReader {
            buf: self.payload(),
        }
    }

    /// Whole frame including the type byte.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Total length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Frames are never empty; provided for clippy symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The underlying shared buffer.
    pub fn into_bytes(self) -> Bytes {
        self.bytes
    }
}

/// Incremental frame construction with fixed-width little-endian
/// fields.
#[derive(Debug)]
pub struct FrameBuilder {
    buf: BytesMut,
}

impl FrameBuilder {
    /// Append a `u8`.
    pub fn u8(mut self, v: u8) -> Self {
        self.buf.put_u8(v);
        self
    }

    /// Append a little-endian `u32`.
    pub fn u32(mut self, v: u32) -> Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Append a little-endian `u64`.
    pub fn u64(mut self, v: u64) -> Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Append a little-endian `f64`.
    pub fn f64(mut self, v: f64) -> Self {
        self.buf.put_f64_le(v);
        self
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(mut self, v: &[u8]) -> Self {
        self.buf.put_u32_le(v.len() as u32);
        self.buf.put_slice(v);
        self
    }

    /// Append raw bytes with no length prefix (caller knows the
    /// framing).
    pub fn raw(mut self, v: &[u8]) -> Self {
        self.buf.put_slice(v);
        self
    }

    /// Finish into an immutable [`Frame`].
    pub fn finish(mut self) -> Frame {
        let bytes = self.buf.split().freeze();
        pool_give(self.buf);
        Frame { bytes }
    }
}

/// Sequential reader over a frame payload. Every accessor returns
/// `None` once the buffer is exhausted, so malformed frames surface as
/// parse failures rather than panics.
#[derive(Debug, Clone, Copy)]
pub struct FrameReader<'a> {
    buf: &'a [u8],
}

impl<'a> FrameReader<'a> {
    /// Reader over a raw byte slice (no packet-type byte). Lets nested
    /// encodings — a view embedded in a join reply, say — be parsed
    /// straight from a borrowed length-prefixed field without copying
    /// it into a fresh [`Frame`] first.
    pub fn new(buf: &'a [u8]) -> Self {
        FrameReader { buf }
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Option<u8> {
        let (&first, rest) = self.buf.split_first()?;
        self.buf = rest;
        Some(first)
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let (head, rest) = self.buf.split_at_checked(4)?;
        self.buf = rest;
        Some(u32::from_le_bytes(head.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let (head, rest) = self.buf.split_at_checked(8)?;
        self.buf = rest;
        Some(u64::from_le_bytes(head.try_into().unwrap()))
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self) -> Option<f64> {
        let (head, rest) = self.buf.split_at_checked(8)?;
        self.buf = rest;
        Some(f64::from_le_bytes(head.try_into().unwrap()))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        let (head, rest) = self.buf.split_at_checked(len)?;
        self.buf = rest;
        Some(head)
    }

    /// Remaining unread payload.
    pub fn rest(&self) -> &'a [u8] {
        self.buf
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_read_roundtrip() {
        let f = Frame::builder(7)
            .u8(1)
            .u32(0xDEAD_BEEF)
            .u64(42)
            .f64(0.5)
            .bytes(b"elga")
            .finish();
        assert_eq!(f.packet_type(), 7);
        let mut r = f.reader();
        assert_eq!(r.u8(), Some(1));
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(42));
        assert_eq!(r.f64(), Some(0.5));
        assert_eq!(r.bytes(), Some(&b"elga"[..]));
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u8(), None, "exhausted reader yields None");
    }

    #[test]
    fn signal_frames_are_one_byte() {
        let f = Frame::signal(9);
        assert_eq!(f.len(), 1);
        assert_eq!(f.packet_type(), 9);
        assert!(f.payload().is_empty());
    }

    #[test]
    fn truncated_reads_return_none() {
        let f = Frame::builder(1).u8(5).finish();
        let mut r = f.reader();
        assert_eq!(r.u64(), None, "not enough bytes for a u64");
        // reader is unchanged after a failed read
        assert_eq!(r.u8(), Some(5));
    }

    #[test]
    fn length_prefixed_bytes_guard_against_overrun() {
        // Claim 100 bytes but provide 2.
        let f = Frame::builder(1).u32(100).raw(b"xy").finish();
        let mut r = f.reader();
        assert_eq!(r.bytes(), None);
    }

    #[test]
    #[should_panic(expected = "packet type")]
    fn empty_frame_rejected() {
        let _ = Frame::from_bytes(Bytes::new());
    }

    #[test]
    fn clones_share_storage() {
        let f = Frame::builder(3).raw(&[0u8; 1024]).finish();
        let g = f.clone();
        assert_eq!(f.as_bytes().as_ptr(), g.as_bytes().as_ptr());
    }

    #[test]
    fn pool_recycles_build_buffers() {
        // finish() must hand the build buffer back to the thread-local
        // pool, and the next builder must take it from there instead of
        // the allocator (with real `bytes`, `reserve` then reclaims the
        // original region once previous frames are dropped).
        let f = Frame::builder(1).raw(&[7u8; 512]).finish();
        let depth = pool_depth();
        assert!(
            depth >= 1,
            "finish must return the build buffer to the pool"
        );
        drop(f);
        let _builder = Frame::builder(1);
        assert_eq!(
            pool_depth(),
            depth - 1,
            "a new builder must reuse a pooled buffer"
        );
    }

    #[test]
    fn pool_survives_live_frames() {
        // A frame still alive pins its region; the pool must hand out a
        // distinct buffer rather than corrupt the live frame.
        let held = Frame::builder(2).raw(&[9u8; 256]).finish();
        let other = Frame::builder(3).raw(&[1u8; 256]).finish();
        assert_eq!(held.payload(), &[9u8; 256][..]);
        assert_eq!(other.payload(), &[1u8; 256][..]);
    }
}
