//! TCP transport: the same [`Transport`] contract over real sockets
//! (the `tcp://` analog of §3.5).
//!
//! Wire format: every message is `u32` little-endian length, one wire
//! opcode byte, then the payload. Opcodes:
//!
//! | op | meaning |
//! |----|---------|
//! | 1  | PUSH frame |
//! | 2  | REQ frame (reply comes back on the same connection) |
//! | 3  | REP frame |
//! | 4  | SUBSCRIBE (payload = topic bytes; empty = all) |
//!
//! Connections are handled by detached reader/writer threads feeding
//! the same crossbeam channels the in-process backend uses, so
//! everything above the [`Transport`] trait is backend-agnostic. The
//! §3.5 latency benchmark (`net_latency`) compares the two backends the
//! way the paper compares MPI / raw TCP / ZeroMQ.

use crate::addr::Addr;
use crate::frame::Frame;
use crate::rx::{write_frame_batch, write_msg, RecvBuf};
use crate::transport::{
    Delivery, Mailbox, NetError, NetStats, Outbox, Publisher, ReplyHandle, ReplyRoute, Transport,
};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const OP_PUSH: u8 = 1;
const OP_REQ: u8 = 2;
const OP_REP: u8 = 3;
const OP_SUB: u8 = 4;

/// Most frames gathered into one `writev` by a writer thread. Bounds
/// the slice table while still letting a burst of queued flushes leave
/// in a single syscall.
const WRITE_BATCH: usize = 32;

/// Drain `rx` and write everything queued as gather-batches until the
/// channel closes or the peer goes away.
fn run_writer(mut stream: TcpStream, rx: Receiver<Frame>, op: u8, what: &str, peer: &str) {
    let mut batch: Vec<Frame> = Vec::with_capacity(WRITE_BATCH);
    while let Ok(frame) = rx.recv() {
        batch.push(frame);
        while batch.len() < WRITE_BATCH {
            match rx.try_recv() {
                Ok(f) => batch.push(f),
                Err(_) => break,
            }
        }
        if let Err(e) = write_frame_batch(&mut stream, op, &batch) {
            log_conn_error(what, peer, &e);
            return;
        }
        batch.clear();
    }
}

/// Connection teardowns that are part of normal peer lifecycle; not
/// worth a log line.
fn is_benign_disconnect(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    )
}

/// Log an unexpected per-connection error. One bad peer must never
/// panic the process; reader/writer threads log and exit instead.
fn log_conn_error(what: &str, peer: &str, e: &std::io::Error) {
    if !is_benign_disconnect(e) {
        eprintln!("elga-net: tcp {what} ({peer}): {e}");
    }
}

/// A cached REQ connection: the socket plus its receive slab (replies
/// may straddle reads, so the slab must persist across requests).
/// The slab carries no pool stats: request/reply is stop-and-wait by
/// protocol — exactly one reply per refill — so counting it would pin
/// the reported hit rate near 0.5 no matter how well the data-plane
/// batches.
struct ReqConn {
    stream: TcpStream,
    rbuf: RecvBuf,
}

/// TCP backend. Keeps a cache of REQ connections per peer.
#[derive(Default)]
pub struct TcpTransport {
    req_conns: Mutex<HashMap<SocketAddr, std::sync::Arc<Mutex<Option<ReqConn>>>>>,
    stats: Arc<NetStats>,
}

impl TcpTransport {
    /// A fresh transport.
    pub fn new() -> Self {
        Self::default()
    }

    /// Transport-level traffic counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn tcp_addr(addr: &Addr) -> Result<SocketAddr, NetError> {
        addr.as_tcp().ok_or(NetError::Protocol(
            "tcp transport requires tcp:// addresses",
        ))
    }
}

/// Serve one inbound connection on a bound PULL/REP endpoint: PUSH
/// frames go to the mailbox; REQ frames carry a reply handle routed to
/// this connection's writer thread. Payloads are split zero-copy off a
/// pooled receive slab, never copied into fresh `Vec<u8>`s.
fn serve_conn(mut stream: TcpStream, inbox: Sender<Delivery>, stats: Arc<NetStats>) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".into());
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            log_conn_error("clone stream", &peer, &e);
            return;
        }
    };
    let (rep_tx, rep_rx) = unbounded::<Frame>();
    let writer_peer = peer.clone();
    std::thread::spawn(move || run_writer(writer, rep_rx, OP_REP, "write reply", &writer_peer));
    let mut rbuf = RecvBuf::new(Some(stats));
    loop {
        let (op, payload) = match rbuf.read_msg(&mut stream) {
            Ok(msg) => msg,
            Err(e) => {
                log_conn_error("read", &peer, &e);
                break;
            }
        };
        if payload.is_empty() {
            break; // frames must carry a packet type
        }
        let frame = Frame::from_bytes(payload);
        let delivery = match op {
            OP_PUSH => Delivery::push(frame),
            OP_REQ => Delivery {
                frame,
                reply: Some(ReplyHandle {
                    route: ReplyRoute::Writer(rep_tx.clone()),
                }),
            },
            _ => break,
        };
        if inbox.send(delivery).is_err() {
            break;
        }
    }
}

impl Transport for TcpTransport {
    fn bind(&self, addr: &Addr) -> Result<Mailbox, NetError> {
        let sock = Self::tcp_addr(addr)?;
        let listener = TcpListener::bind(sock)?;
        let local = listener.local_addr()?;
        let (tx, rx) = unbounded();
        let stats = self.stats.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                let _ = stream.set_nodelay(true);
                let inbox = tx.clone();
                let stats = stats.clone();
                std::thread::spawn(move || serve_conn(stream, inbox, stats));
            }
        });
        Ok(Mailbox {
            addr: Addr::Tcp(local),
            rx,
            stats: Some(self.stats.clone()),
        })
    }

    fn sender(&self, addr: &Addr) -> Result<Outbox, NetError> {
        let sock = Self::tcp_addr(addr)?;
        let mut stream = TcpStream::connect(sock)?;
        stream.set_nodelay(true)?;
        let (tx, rx) = unbounded::<Delivery>();
        let peer = sock.to_string();
        std::thread::spawn(move || {
            // Gather everything queued behind a send into one writev:
            // a coalesced flush (or a burst of them) is one syscall.
            let mut batch: Vec<Frame> = Vec::with_capacity(WRITE_BATCH);
            while let Ok(d) = rx.recv() {
                batch.push(d.frame);
                while batch.len() < WRITE_BATCH {
                    match rx.try_recv() {
                        Ok(d) => batch.push(d.frame),
                        Err(_) => break,
                    }
                }
                if let Err(e) = write_frame_batch(&mut stream, OP_PUSH, &batch) {
                    log_conn_error("write push", &peer, &e);
                    break;
                }
                batch.clear();
            }
        });
        Ok(Outbox {
            tx,
            stats: Some(self.stats.clone()),
        })
    }

    fn request(&self, addr: &Addr, frame: Frame, timeout: Duration) -> Result<Frame, NetError> {
        let sock = Self::tcp_addr(addr)?;
        let slot = self.req_conns.lock().entry(sock).or_default().clone();
        let mut guard = slot.lock();
        if guard.is_none() {
            let s = TcpStream::connect(sock)?;
            s.set_nodelay(true)?;
            *guard = Some(ReqConn {
                stream: s,
                rbuf: RecvBuf::new(None),
            });
        }
        let Some(conn) = guard.as_mut() else {
            return Err(NetError::Disconnected);
        };
        conn.stream.set_read_timeout(Some(timeout))?;
        self.stats.record_sent(frame.packet_type(), frame.len());
        let outcome = (|| -> Result<Frame, NetError> {
            write_msg(&mut conn.stream, OP_REQ, frame.as_bytes())?;
            let (op, payload) = conn.rbuf.read_msg(&mut conn.stream).map_err(|e| {
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    NetError::Timeout
                } else {
                    NetError::Io(e)
                }
            })?;
            if op != OP_REP || payload.is_empty() {
                return Err(NetError::Protocol("expected REP frame"));
            }
            Ok(Frame::from_bytes(payload))
        })();
        if outcome.is_err() {
            // Drop the connection: a timed-out REQ would otherwise
            // desynchronize the lockstep REQ/REP stream.
            *guard = None;
        }
        outcome
    }

    fn bind_publisher(&self, addr: &Addr) -> Result<Publisher, NetError> {
        let sock = Self::tcp_addr(addr)?;
        let listener = TcpListener::bind(sock)?;
        let local = listener.local_addr()?;
        type Subs = std::sync::Arc<Mutex<Vec<(Vec<u8>, Sender<Frame>)>>>;
        let subs: Subs = Default::default();
        let accept_subs = subs.clone();
        std::thread::spawn(move || {
            for mut stream in listener.incoming().flatten() {
                let _ = stream.set_nodelay(true);
                let subs = accept_subs.clone();
                std::thread::spawn(move || {
                    // First message must be a subscription.
                    let Ok((OP_SUB, topics)) = RecvBuf::new(None).read_msg(&mut stream) else {
                        return;
                    };
                    let peer = stream
                        .peer_addr()
                        .map(|a| a.to_string())
                        .unwrap_or_else(|_| "<unknown>".into());
                    let (tx, rx) = unbounded::<Frame>();
                    subs.lock().push((topics.to_vec(), tx));
                    run_writer(stream, rx, OP_PUSH, "write publication", &peer);
                });
            }
        });
        let stats = self.stats.clone();
        Ok(Publisher {
            addr: Addr::Tcp(local),
            sink: Box::new(move |frame: &Frame| {
                let mut subs = subs.lock();
                let mut reached = 0;
                subs.retain(|(topics, tx)| {
                    let matches = topics.is_empty() || topics.contains(&frame.packet_type());
                    if !matches {
                        return true;
                    }
                    match tx.send(frame.clone()) {
                        Ok(()) => {
                            reached += 1;
                            true
                        }
                        Err(_) => false,
                    }
                });
                stats.record_sent_n(frame.packet_type(), frame.len(), reached);
                reached as usize
            }),
        })
    }

    fn subscribe(&self, addr: &Addr, topics: &[u8]) -> Result<Mailbox, NetError> {
        let sock = Self::tcp_addr(addr)?;
        let mut stream = TcpStream::connect(sock)?;
        stream.set_nodelay(true)?;
        write_msg(&mut stream, OP_SUB, topics)?;
        let (tx, rx) = unbounded();
        let local = Addr::Tcp(stream.local_addr()?);
        let peer = sock.to_string();
        std::thread::spawn(move || {
            // No pool stats: subscriptions carry sporadic control-plane
            // broadcasts (ADVANCE/RECOVER), inherently one per refill.
            let mut rbuf = RecvBuf::new(None);
            loop {
                let payload = match rbuf.read_msg(&mut stream) {
                    Ok((OP_PUSH, payload)) => payload,
                    Ok(_) => break, // publishers only ever push
                    Err(e) => {
                        log_conn_error("read subscription", &peer, &e);
                        break;
                    }
                };
                if payload.is_empty()
                    || tx.send(Delivery::push(Frame::from_bytes(payload))).is_err()
                {
                    break;
                }
            }
        });
        Ok(Mailbox {
            addr: local,
            rx,
            stats: Some(self.stats.clone()),
        })
    }

    fn net_stats(&self) -> Option<Arc<NetStats>> {
        Some(self.stats.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn any_port() -> Addr {
        Addr::parse("tcp://127.0.0.1:0").unwrap()
    }

    #[test]
    fn push_roundtrip_over_sockets() {
        let t = TcpTransport::new();
        let mb = t.bind(&any_port()).unwrap();
        let out = t.sender(mb.addr()).unwrap();
        out.send(Frame::builder(5).u64(99).finish()).unwrap();
        let d = mb.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(d.frame.packet_type(), 5);
        assert_eq!(d.frame.reader().u64(), Some(99));
    }

    #[test]
    fn request_reply_over_sockets() {
        let t = Arc::new(TcpTransport::new());
        let mb = t.bind(&any_port()).unwrap();
        let server_addr = mb.addr().clone();
        std::thread::spawn(move || {
            for _ in 0..2 {
                let d = mb.recv().unwrap();
                let echoed = d.frame.reader().u64().unwrap();
                d.reply
                    .unwrap()
                    .send(Frame::builder(2).u64(echoed * 2).finish())
                    .unwrap();
            }
        });
        // Two sequential requests reuse the cached connection.
        for x in [21u64, 50] {
            let rep = t
                .request(
                    &server_addr,
                    Frame::builder(1).u64(x).finish(),
                    Duration::from_secs(5),
                )
                .unwrap();
            assert_eq!(rep.reader().u64(), Some(x * 2));
        }
    }

    #[test]
    fn request_timeout_resets_connection() {
        let t = TcpTransport::new();
        let mb = t.bind(&any_port()).unwrap();
        let addr = mb.addr().clone();
        // Server never replies.
        let err = t
            .request(&addr, Frame::signal(1), Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, NetError::Timeout));
        // A later request gets a fresh connection and works.
        std::thread::spawn(move || {
            while let Ok(d) = mb.recv() {
                if let Some(r) = d.reply {
                    let _ = r.send(Frame::signal(8));
                }
            }
        });
        let rep = t
            .request(&addr, Frame::signal(1), Duration::from_secs(5))
            .unwrap();
        assert_eq!(rep.packet_type(), 8);
    }

    #[test]
    fn pubsub_over_sockets_filters_topics() {
        let t = TcpTransport::new();
        let publ = t.bind_publisher(&any_port()).unwrap();
        let sub_all = t.subscribe(publ.addr(), &[]).unwrap();
        let sub_7 = t.subscribe(publ.addr(), &[7]).unwrap();
        // Wait until both subscriptions are registered: a type-7 probe
        // matches both filters.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while publ.publish(&Frame::signal(7)) < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "subscribers never registered"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        publ.publish(&Frame::signal(3));
        assert_eq!(
            sub_7
                .recv_timeout(Duration::from_secs(5))
                .unwrap()
                .frame
                .packet_type(),
            7
        );
        // sub_all sees some number of 7-probes followed by the 3.
        loop {
            let d = sub_all.recv_timeout(Duration::from_secs(5)).unwrap();
            match d.frame.packet_type() {
                7 => continue,
                3 => break,
                other => panic!("unexpected packet type {other}"),
            }
        }
        // sub_7 never receives the 3 — anything still queued must be a
        // 7-probe.
        while let Ok(Some(d)) = sub_7.try_recv() {
            assert_eq!(d.frame.packet_type(), 7);
        }
    }

    #[test]
    fn inproc_addr_rejected() {
        let t = TcpTransport::new();
        assert!(matches!(
            t.bind(&Addr::inproc("x")),
            Err(NetError::Protocol(_))
        ));
    }
}
