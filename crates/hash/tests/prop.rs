//! Property-based tests for the consistent-hashing layer.

use elga_hash::{EdgeLocator, HashKind, LocatorConfig, Ring};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = HashKind> {
    prop_oneof![
        Just(HashKind::Wang),
        Just(HashKind::Mult),
        Just(HashKind::Abseil),
        Just(HashKind::Crc64),
    ]
}

proptest! {
    /// Adding an agent moves keys only to the new agent.
    #[test]
    fn join_moves_keys_only_to_new_agent(
        kind in arb_kind(),
        n in 1u64..24,
        vper in 1u32..64,
        new_agent in 1000u64..2000,
        keys in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let before = Ring::from_agents(kind, vper, 0..n);
        let mut after = before.clone();
        after.add_agent(new_agent);
        for key in keys {
            let b = before.owner(key).unwrap();
            let a = after.owner(key).unwrap();
            prop_assert!(a == b || a == new_agent);
        }
    }

    /// Removing an agent moves only that agent's keys.
    #[test]
    fn leave_moves_only_departed_keys(
        kind in arb_kind(),
        n in 2u64..24,
        vper in 1u32..64,
        victim_idx in any::<u64>(),
        keys in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let before = Ring::from_agents(kind, vper, 0..n);
        let victim = victim_idx % n;
        let mut after = before.clone();
        after.remove_agent(victim);
        for key in keys {
            let b = before.owner(key).unwrap();
            let a = after.owner(key).unwrap();
            if b != victim {
                prop_assert_eq!(a, b);
            } else {
                prop_assert_ne!(a, victim);
            }
        }
    }

    /// The replica set is always distinct agents drawn from the ring,
    /// with the primary first.
    #[test]
    fn replica_sets_are_distinct_members(
        n in 1u64..32,
        k in 1usize..8,
        key in any::<u64>(),
    ) {
        let ring = Ring::from_agents(HashKind::Wang, 16, 0..n);
        let owners = ring.owners(key, k);
        prop_assert_eq!(owners.len(), k.min(n as usize));
        let set: std::collections::HashSet<_> = owners.iter().copied().collect();
        prop_assert_eq!(set.len(), owners.len());
        for a in &owners {
            prop_assert!(ring.contains(*a));
        }
        prop_assert_eq!(owners[0], ring.owner(key).unwrap());
    }

    /// The edge owner is always a member of the source's replica set.
    #[test]
    fn edge_owner_in_replica_set(
        n in 1u64..32,
        u in any::<u64>(),
        v in any::<u64>(),
        deg in 0u64..10_000,
    ) {
        let loc = EdgeLocator::new(
            Ring::from_agents(HashKind::Wang, 20, 0..n),
            LocatorConfig { replication_threshold: 100, max_replicas: 8 },
        );
        let owner = loc.owner_of_edge(u, v, deg).unwrap();
        let replicas = loc.replicas_of_vertex(u, deg);
        prop_assert!(replicas.contains(&owner));
    }

    /// Ownership is a pure function of (ring membership, key) — the
    /// insertion order of agents never matters.
    #[test]
    fn ownership_independent_of_join_order(
        mut agents in prop::collection::hash_set(0u64..10_000, 1..16),
        keys in prop::collection::vec(any::<u64>(), 1..64),
    ) {
        let list: Vec<u64> = agents.drain().collect();
        let forward = Ring::from_agents(HashKind::Wang, 10, list.iter().copied());
        let backward = Ring::from_agents(HashKind::Wang, 10, list.iter().rev().copied());
        for key in keys {
            prop_assert_eq!(forward.owner(key), backward.owner(key));
        }
    }
}
