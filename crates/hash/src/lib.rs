//! Hashing building blocks for ElGA.
//!
//! This crate provides the three hashing layers the paper's edge-location
//! scheme is built from (ElGA §3.4.1, Figure 3):
//!
//! 1. [`funcs`] — the 64-bit integer hash functions evaluated in the
//!    paper's Figure 5 (Thomas Wang's hash, a multiplicative hash, an
//!    Abseil-style seeded hash, and CRC64).
//! 2. [`ring`] — a consistent-hash ring with *virtual agents*
//!    (§3.4.2), giving `O(log P)` successor lookups and minimal key
//!    movement when agents join or leave.
//! 3. [`locator`] — the two-level edge locator: a degree estimate
//!    chooses how many replicas a vertex is split into, the first
//!    consistent hash finds the replica set, and a second consistent
//!    hash over that set picks the owner of a particular edge.
//!
//! It also provides [`fx`], a fast non-cryptographic `Hasher` used for
//! in-memory hash maps throughout the workspace (the paper stores its
//! dynamic graph in flat hash maps; SipHash would dominate runtime).

#![warn(missing_docs)]

pub mod cache;
pub mod funcs;
pub mod fx;
pub mod locator;
pub mod ring;

pub use cache::OwnerCache;
pub use funcs::{abseil64, crc64, mult64, wang64, HashKind};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use locator::{EdgeLocator, LocatorConfig, VertexPlacement};
pub use ring::{AgentId, Ring};
