//! Epoch-scoped owner-resolution cache.
//!
//! Every hot path in the system — scatter routing, streamer ingest,
//! change application, migration sweeps — asks the same question over
//! and over: "who owns edge `(u, v)`?". Answering it from scratch costs
//! a count-min-sketch estimate (`depth` row hashes) plus an
//! `O(log P·V)` ring walk plus, for replicated vertices, re-hashing the
//! replica set. All of that depends only on `u` and the current
//! directory view, so an [`OwnerCache`] memoises the resolved
//! [`VertexPlacement`] per source vertex and reduces each subsequent
//! edge of the same source to one hash and a binary search over the
//! mini ring.
//!
//! ## Invalidation
//!
//! A placement is valid exactly as long as the [`DirectoryView`] it was
//! derived from: membership changes move ring successors, and sketch
//! folds move degree estimates across replication thresholds. Both bump
//! the view epoch, so the cache is keyed by a single `u64` epoch and
//! [`OwnerCache::ensure_epoch`] drops everything when it changes.
//! Callers must pass the epoch of the view whose locator/sketch they
//! resolve against — sketch-only refreshes (membership unchanged) still
//! carry a new epoch and still invalidate, because they can change `k`.
//!
//! `DirectoryView` lives in `elga-core`; this crate only sees the epoch
//! number, which keeps the dependency arrow pointing the right way.

use crate::fx::FxHashMap;
use crate::locator::{EdgeLocator, VertexPlacement};
use crate::ring::AgentId;

/// Memo of `vertex → placement` under one view epoch, wrapping
/// [`EdgeLocator`]. Degree estimates are supplied by closures so the
/// cache works against any estimator (live CMS view, tests with fixed
/// degrees) and only pays for estimation on a miss.
#[derive(Debug)]
pub struct OwnerCache {
    epoch: u64,
    entries: FxHashMap<u64, VertexPlacement>,
    enabled: bool,
    hits: u64,
    misses: u64,
}

impl Default for OwnerCache {
    fn default() -> Self {
        OwnerCache::new()
    }
}

impl OwnerCache {
    /// Empty cache, pinned to epoch 0 (matching the pre-join view).
    pub fn new() -> Self {
        OwnerCache {
            epoch: 0,
            entries: FxHashMap::default(),
            enabled: true,
            hits: 0,
            misses: 0,
        }
    }

    /// A cache that never retains entries: every lookup recomputes the
    /// placement. Exists so benchmarks can measure the uncached
    /// baseline through the identical code path.
    pub fn disabled() -> Self {
        OwnerCache {
            enabled: false,
            ..OwnerCache::new()
        }
    }

    /// Align the cache with a view epoch, dropping all entries if it
    /// differs from the epoch the entries were resolved under. Call
    /// before any batch of lookups.
    pub fn ensure_epoch(&mut self, epoch: u64) {
        if self.epoch != epoch {
            self.epoch = epoch;
            self.entries.clear();
        }
    }

    /// The epoch the current entries belong to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cached placements currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no placements are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime lookup counters `(hits, misses)`. Hits count lookups
    /// served from the memo; misses count distinct placements resolved.
    /// Counters survive epoch invalidation (they describe the cache,
    /// not one view).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// The placement of `u`, resolving (and memoising) it via
    /// `estimate` on a miss.
    pub fn placement(
        &mut self,
        loc: &EdgeLocator,
        u: u64,
        estimate: impl FnOnce() -> u64,
    ) -> &VertexPlacement {
        if !self.enabled {
            // Keep at most the entry being resolved so the borrow has
            // somewhere to live, but never serve a stale one.
            self.entries.clear();
        }
        match self.entries.entry(u) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.misses += 1;
                e.insert(loc.placement(u, estimate()))
            }
        }
    }

    /// Owner of edge `(u, v)`: cached placement of `u`, then the
    /// second-level hash of `v`. `None` only on an empty ring.
    pub fn owner_of_edge(
        &mut self,
        loc: &EdgeLocator,
        u: u64,
        v: u64,
        estimate: impl FnOnce() -> u64,
    ) -> Option<AgentId> {
        let p = self.placement(loc, u, estimate);
        // Placement borrow ends before the second hash needs `loc` only.
        loc.owner_from_placement(p, v)
    }

    /// Primary owner (ring successor) of `u`. `None` only on an empty
    /// ring.
    pub fn primary(
        &mut self,
        loc: &EdgeLocator,
        u: u64,
        estimate: impl FnOnce() -> u64,
    ) -> Option<AgentId> {
        self.placement(loc, u, estimate).primary
    }

    /// Replica set of `u` in ring order.
    pub fn replicas(
        &mut self,
        loc: &EdgeLocator,
        u: u64,
        estimate: impl FnOnce() -> u64,
    ) -> &[AgentId] {
        &self.placement(loc, u, estimate).replicas
    }

    /// Resolve the owners of a batch of edges in one pass, hashing and
    /// degree-estimating each *distinct source vertex* exactly once per
    /// epoch (the memo dedups; `estimate` runs only on a miss). Owners
    /// are appended to `out` in input order; `None` only on an empty
    /// ring.
    ///
    /// Hit/miss accounting matches the sequential lookups this
    /// replaces: each pair whose source was already memoised counts one
    /// hit; each distinct source resolved counts one miss.
    ///
    /// Single map probe per pair — measurably faster than a
    /// collect-sort-estimate-revisit scheme, whose extra pass and sort
    /// ate most of the memo's win on ingest-sized batches.
    pub fn resolve_many(
        &mut self,
        loc: &EdgeLocator,
        pairs: &[(u64, u64)],
        mut estimate: impl FnMut(u64) -> u64,
        out: &mut Vec<Option<AgentId>>,
    ) {
        if !self.enabled {
            // Per-call scratch only: batches dedup internally, but
            // nothing persists to the next call.
            self.entries.clear();
        }
        out.reserve(pairs.len());
        for &(u, v) in pairs {
            let p = match self.entries.entry(u) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    self.hits += 1;
                    e.into_mut()
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    self.misses += 1;
                    e.insert(loc.placement(u, estimate(u)))
                }
            };
            out.push(loc.owner_from_placement(p, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funcs::HashKind;
    use crate::locator::LocatorConfig;
    use crate::ring::Ring;

    fn locator(agents: u64, threshold: u64) -> EdgeLocator {
        EdgeLocator::new(
            Ring::from_agents(HashKind::Wang, 100, 0..agents),
            LocatorConfig {
                replication_threshold: threshold,
                max_replicas: 16,
            },
        )
    }

    /// Deterministic fake degree: high for multiples of 3 so both the
    /// k = 1 and k > 1 paths are exercised.
    fn degree(u: u64) -> u64 {
        if u.is_multiple_of(3) {
            777
        } else {
            5
        }
    }

    #[test]
    fn cached_owner_matches_direct_resolution() {
        let loc = locator(16, 100);
        let mut cache = OwnerCache::new();
        cache.ensure_epoch(1);
        for u in 0..40u64 {
            for v in 0..40u64 {
                assert_eq!(
                    cache.owner_of_edge(&loc, u, v, || degree(u)),
                    loc.owner_of_edge(u, v, degree(u)),
                    "u={u} v={v}"
                );
            }
        }
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 40, "one resolution per distinct source");
        assert_eq!(hits, 40 * 40 - 40);
    }

    #[test]
    fn resolve_many_matches_direct_and_counts_once_per_source() {
        let loc = locator(8, 100);
        let mut cache = OwnerCache::new();
        cache.ensure_epoch(3);
        let pairs: Vec<(u64, u64)> = (0..200).map(|i| (i % 13, i * 7 % 31)).collect();
        let mut estimated: Vec<u64> = Vec::new();
        let mut owners = Vec::new();
        cache.resolve_many(
            &loc,
            &pairs,
            |k| {
                estimated.push(k);
                degree(k)
            },
            &mut owners,
        );
        assert_eq!(owners.len(), pairs.len());
        for (&(u, v), &owner) in pairs.iter().zip(&owners) {
            assert_eq!(owner, loc.owner_of_edge(u, v, degree(u)));
        }
        // 13 distinct sources, estimated exactly once each, in first-
        // occurrence order.
        estimated.sort_unstable();
        assert_eq!(estimated, (0..13u64).collect::<Vec<_>>());
        assert_eq!(cache.stats(), (200 - 13, 13));

        // Second batch over the same sources: pure hits, no estimation.
        let mut owners2 = Vec::new();
        cache.resolve_many(
            &loc,
            &pairs,
            |_| panic!("no estimation expected on a warm cache"),
            &mut owners2,
        );
        assert_eq!(owners, owners2);
    }

    #[test]
    fn epoch_change_invalidates() {
        let loc_a = locator(4, 100);
        let loc_b = locator(9, 100); // different membership
        let mut cache = OwnerCache::new();
        cache.ensure_epoch(1);
        let _ = cache.owner_of_edge(&loc_a, 7, 8, || 5);
        assert_eq!(cache.len(), 1);
        // Same epoch: entry survives.
        cache.ensure_epoch(1);
        assert_eq!(cache.len(), 1);
        // New epoch (view changed): entry dropped, next lookup resolves
        // against the new locator.
        cache.ensure_epoch(2);
        assert!(cache.is_empty());
        assert_eq!(
            cache.owner_of_edge(&loc_b, 7, 8, || 5),
            loc_b.owner_of_edge(7, 8, 5)
        );
    }

    #[test]
    fn stale_estimates_are_not_served_across_epochs() {
        // A sketch fold can change k without changing membership; the
        // epoch bump must force re-resolution.
        let loc = locator(8, 100);
        let mut cache = OwnerCache::new();
        cache.ensure_epoch(1);
        let before = cache.placement(&loc, 9, || 5).k;
        assert_eq!(before, 1);
        cache.ensure_epoch(2);
        let after = cache.placement(&loc, 9, || 500).k;
        assert_eq!(after, 5);
    }

    #[test]
    fn disabled_cache_resolves_but_never_hits() {
        let loc = locator(8, 100);
        let mut cache = OwnerCache::disabled();
        cache.ensure_epoch(1);
        for _ in 0..3 {
            assert_eq!(
                cache.owner_of_edge(&loc, 7, 8, || 5),
                loc.owner_of_edge(7, 8, 5)
            );
        }
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 0);
        assert_eq!(misses, 3);
        let mut owners = Vec::new();
        cache.resolve_many(&loc, &[(7, 8), (7, 9)], |_| 5, &mut owners);
        assert_eq!(owners[0], loc.owner_of_edge(7, 8, 5));
        assert_eq!(owners[1], loc.owner_of_edge(7, 9, 5));
    }

    #[test]
    fn empty_ring_resolves_to_none() {
        let loc = EdgeLocator::new(Ring::new(HashKind::Wang, 4), LocatorConfig::default());
        let mut cache = OwnerCache::new();
        assert_eq!(cache.owner_of_edge(&loc, 1, 2, || 0), None);
        assert_eq!(cache.primary(&loc, 1, || 0), None);
        let mut owners = Vec::new();
        cache.resolve_many(&loc, &[(1, 2)], |_| 0, &mut owners);
        assert_eq!(owners, vec![None]);
    }
}
