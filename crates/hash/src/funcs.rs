//! The 64-bit integer hash functions compared in the paper's Figure 5.
//!
//! ElGA hashes vertex and agent identifiers on every edge access, so the
//! function must be cheap *and* uniform; the paper selects Thomas Wang's
//! 64-bit mix after comparing it against a multiplicative hash, Abseil's
//! seeded hash, and CRC64. All four are reproduced here so the Figure 5
//! experiment can be regenerated.

use serde::{Deserialize, Serialize};

/// Thomas Wang's 64-bit integer hash (1997), the function ElGA ships with.
///
/// Full-avalanche mix of a 64-bit key using shifts, adds and xors only.
#[inline]
pub fn wang64(mut key: u64) -> u64 {
    key = (!key).wrapping_add(key << 21); // key = (key << 21) - key - 1
    key ^= key >> 24;
    key = key.wrapping_add(key << 3).wrapping_add(key << 8); // key * 265
    key ^= key >> 14;
    key = key.wrapping_add(key << 2).wrapping_add(key << 4); // key * 21
    key ^= key >> 28;
    key.wrapping_add(key << 31)
}

/// Fibonacci multiplicative hash ("Mult" in the paper, after Steele, Lea
/// and Flood's fast splittable PRNG mixing constant).
///
/// A single multiply: extremely fast, but low bits mix poorly, which is
/// visible as load imbalance on the ring (Figure 5b).
#[inline]
pub fn mult64(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Default process-wide seed for [`abseil64`].
///
/// Abseil's hash is deliberately non-deterministic across processes; we
/// derive a seed once per process from the system clock and ASLR so that
/// repeated runs exercise different placements, exactly as the paper's
/// "Abseil" variant does. Tests needing determinism call
/// [`abseil64_seeded`] directly.
pub fn abseil_process_seed() -> u64 {
    use std::sync::OnceLock;
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5bd1_e995);
        // Mix in an address to pick up ASLR entropy.
        let a = &SEED as *const _ as u64;
        wang64(t ^ a.rotate_left(17))
    })
}

/// Abseil-style seeded hash: a 128-bit multiply of the seeded key folded
/// back to 64 bits (the core of `absl::Hash`'s `Mix`).
#[inline]
pub fn abseil64_seeded(key: u64, seed: u64) -> u64 {
    const K_MUL: u64 = 0x9DDF_EA08_EB38_2D69;
    let m = (key ^ seed) as u128 * K_MUL as u128;
    let folded = (m >> 64) as u64 ^ m as u64;
    let m2 = folded as u128 * K_MUL as u128;
    (m2 >> 64) as u64 ^ m2 as u64
}

/// Abseil-style hash with the per-process seed.
#[inline]
pub fn abseil64(key: u64) -> u64 {
    abseil64_seeded(key, abseil_process_seed())
}

/// CRC64 table for the ECMA-182 polynomial used by the paper's CRC64
/// variant ("Data interchange on 12,7 mm 48-track magnetic tape").
const CRC64_POLY: u64 = 0x42F0_E1EB_A9EA_3693;

const fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = (i as u64) << 56;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & (1u64 << 63) != 0 {
                (crc << 1) ^ CRC64_POLY
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = crc64_table();

/// CRC64/ECMA-182 over the key's eight little-endian bytes.
///
/// High quality but the slowest of the four candidates (eight dependent
/// table lookups per hash).
#[inline]
pub fn crc64(key: u64) -> u64 {
    let mut crc = !0u64;
    let bytes = key.to_le_bytes();
    let mut i = 0;
    while i < 8 {
        let idx = ((crc >> 56) as u8 ^ bytes[i]) as usize;
        crc = (crc << 8) ^ CRC64_TABLE[idx];
        i += 1;
    }
    !crc
}

/// The hash-function choices evaluated in the paper's Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum HashKind {
    /// Thomas Wang's 64-bit hash — ElGA's default.
    #[default]
    Wang,
    /// Fibonacci multiplicative hash.
    Mult,
    /// Abseil-style seeded hash (non-deterministic per process).
    Abseil,
    /// CRC64/ECMA-182.
    Crc64,
}

impl HashKind {
    /// All candidates, in the order the paper plots them.
    pub const ALL: [HashKind; 4] = [
        HashKind::Wang,
        HashKind::Mult,
        HashKind::Abseil,
        HashKind::Crc64,
    ];

    /// Hash a 64-bit key with this function.
    #[inline]
    pub fn hash(self, key: u64) -> u64 {
        match self {
            HashKind::Wang => wang64(key),
            HashKind::Mult => mult64(key),
            HashKind::Abseil => abseil64(key),
            HashKind::Crc64 => crc64(key),
        }
    }

    /// Short display name used by the benchmark harnesses.
    pub fn name(self) -> &'static str {
        match self {
            HashKind::Wang => "Wang",
            HashKind::Mult => "Mult",
            HashKind::Abseil => "Abseil",
            HashKind::Crc64 => "CRC64",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wang_is_deterministic_and_mixing() {
        assert_eq!(wang64(0), wang64(0));
        assert_ne!(wang64(0), wang64(1));
        // Consecutive keys should land far apart.
        let a = wang64(100);
        let b = wang64(101);
        assert!(a.abs_diff(b) > 1 << 32);
    }

    #[test]
    fn wang_injective_on_small_range() {
        // Wang's mix is a bijection on u64; no collisions may appear on
        // any sampled range.
        let mut seen = std::collections::HashSet::new();
        for k in 0..10_000u64 {
            assert!(seen.insert(wang64(k)), "collision at {k}");
        }
    }

    #[test]
    fn mult_is_multiplicative() {
        assert_eq!(mult64(1), 0x9E37_79B9_7F4A_7C15);
        assert_eq!(mult64(0), 0);
    }

    #[test]
    fn abseil_seeded_depends_on_seed() {
        assert_ne!(abseil64_seeded(42, 1), abseil64_seeded(42, 2));
        assert_eq!(abseil64_seeded(42, 7), abseil64_seeded(42, 7));
    }

    #[test]
    fn abseil_process_seed_is_stable_within_process() {
        assert_eq!(abseil_process_seed(), abseil_process_seed());
        assert_eq!(abseil64(9), abseil64(9));
    }

    #[test]
    fn crc64_zero_and_nonzero() {
        // CRC of 0 with init !0 and final xor is a fixed nonzero value.
        assert_ne!(crc64(0), 0);
        assert_eq!(crc64(123), crc64(123));
        assert_ne!(crc64(123), crc64(124));
    }

    #[test]
    fn kind_dispatch_matches_functions() {
        for k in [5u64, 1 << 40, u64::MAX] {
            assert_eq!(HashKind::Wang.hash(k), wang64(k));
            assert_eq!(HashKind::Mult.hash(k), mult64(k));
            assert_eq!(HashKind::Abseil.hash(k), abseil64(k));
            assert_eq!(HashKind::Crc64.hash(k), crc64(k));
        }
    }

    #[test]
    fn all_kinds_listed_once() {
        let names: Vec<_> = HashKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["Wang", "Mult", "Abseil", "CRC64"]);
    }

    /// A crude avalanche check: flipping one input bit should flip a
    /// substantial number of output bits for the quality hashes.
    #[test]
    fn wang_and_crc_avalanche() {
        for f in [wang64 as fn(u64) -> u64, crc64] {
            let mut total = 0u32;
            let trials = 64 * 16;
            for i in 0..16u64 {
                let x = i.wrapping_mul(0x1234_5678_9abc_def1);
                for bit in 0..64 {
                    total += (f(x) ^ f(x ^ (1 << bit))).count_ones();
                }
            }
            let avg = total as f64 / trials as f64;
            assert!(
                (20.0..44.0).contains(&avg),
                "poor avalanche: {avg} bits flipped on average"
            );
        }
    }
}
