//! Consistent-hash ring with virtual agents (ElGA §3.4.1–3.4.2).
//!
//! Agents are placed on a 64-bit ring at positions derived by hashing
//! their identifiers; each agent contributes `virtual_per_agent`
//! positions (the paper finds 100 a good default, Figure 6). A key is
//! owned by the agent whose position is the key hash's successor on the
//! ring. Joins and leaves move only the keys adjacent to the affected
//! positions — the property that makes ElGA's elasticity cheap
//! (Figure 16).

use crate::funcs::HashKind;
use serde::{Deserialize, Serialize};

/// Identifier of an Agent (one per core in the paper's deployment).
pub type AgentId = u64;

/// Mixing constant for deriving virtual-agent identifiers.
const VIRT_SALT: u64 = 0x0100_0000_01B3;

/// A consistent-hash ring over agents.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ring {
    kind: HashKind,
    virtual_per_agent: u32,
    /// `(position, agent)` pairs sorted by position (ties by agent id).
    positions: Vec<(u64, AgentId)>,
    /// Sorted, deduplicated agent ids.
    agents: Vec<AgentId>,
}

impl Ring {
    /// Create an empty ring.
    ///
    /// # Panics
    /// Panics if `virtual_per_agent` is zero.
    pub fn new(kind: HashKind, virtual_per_agent: u32) -> Self {
        assert!(virtual_per_agent > 0, "need at least one virtual agent");
        Ring {
            kind,
            virtual_per_agent,
            positions: Vec::new(),
            agents: Vec::new(),
        }
    }

    /// Create a ring already populated with `agents`. Positions are
    /// built in bulk and sorted once — `O(P·V log(P·V))` instead of the
    /// quadratic cost of `P·V` incremental inserts (matters at the
    /// paper's 2048-agent scale with many virtual agents).
    pub fn from_agents(
        kind: HashKind,
        virtual_per_agent: u32,
        agents: impl IntoIterator<Item = AgentId>,
    ) -> Self {
        let mut ring = Ring::new(kind, virtual_per_agent);
        let mut ids: Vec<AgentId> = agents.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        let mut positions = Vec::with_capacity(ids.len() * virtual_per_agent as usize);
        for &a in &ids {
            for j in 0..virtual_per_agent {
                positions.push((ring.virtual_position(a, j), a));
            }
        }
        positions.sort_unstable();
        ring.agents = ids;
        ring.positions = positions;
        ring
    }

    /// The hash function used for ring placement and key lookup.
    pub fn kind(&self) -> HashKind {
        self.kind
    }

    /// Number of virtual positions each agent contributes.
    pub fn virtual_per_agent(&self) -> u32 {
        self.virtual_per_agent
    }

    /// Position of virtual replica `j` of `agent`.
    #[inline]
    fn virtual_position(&self, agent: AgentId, j: u32) -> u64 {
        self.kind
            .hash(agent.wrapping_mul(VIRT_SALT) ^ crate::funcs::wang64(j as u64))
    }

    /// Add an agent (no-op if already present). `O(V log N)` for `V`
    /// virtual positions.
    pub fn add_agent(&mut self, agent: AgentId) -> bool {
        match self.agents.binary_search(&agent) {
            Ok(_) => false,
            Err(idx) => {
                self.agents.insert(idx, agent);
                for j in 0..self.virtual_per_agent {
                    let pos = self.virtual_position(agent, j);
                    let entry = (pos, agent);
                    let at = self.positions.partition_point(|&p| p < entry);
                    self.positions.insert(at, entry);
                }
                true
            }
        }
    }

    /// Remove an agent (no-op if absent).
    pub fn remove_agent(&mut self, agent: AgentId) -> bool {
        match self.agents.binary_search(&agent) {
            Err(_) => false,
            Ok(idx) => {
                self.agents.remove(idx);
                self.positions.retain(|&(_, a)| a != agent);
                true
            }
        }
    }

    /// Whether the ring currently contains `agent`.
    pub fn contains(&self, agent: AgentId) -> bool {
        self.agents.binary_search(&agent).is_ok()
    }

    /// Number of distinct agents on the ring.
    pub fn len(&self) -> usize {
        self.agents.len()
    }

    /// True when no agents are present.
    pub fn is_empty(&self) -> bool {
        self.agents.is_empty()
    }

    /// The sorted set of agents on the ring.
    pub fn agents(&self) -> &[AgentId] {
        &self.agents
    }

    /// Index of the first ring position strictly greater than `h`
    /// (wrapping to 0 at the end of the vector).
    #[inline]
    fn successor_index(&self, h: u64) -> usize {
        let idx = self.positions.partition_point(|&(pos, _)| pos <= h);
        if idx == self.positions.len() {
            0
        } else {
            idx
        }
    }

    /// Owner of a *pre-hashed* key: the agent at the key's successor
    /// position. `O(log(P * V))`. Returns `None` on an empty ring.
    #[inline]
    pub fn owner_of_hash(&self, h: u64) -> Option<AgentId> {
        if self.positions.is_empty() {
            return None;
        }
        Some(self.positions[self.successor_index(h)].1)
    }

    /// Owner of `key` (hashed with the ring's hash function first).
    #[inline]
    pub fn owner(&self, key: u64) -> Option<AgentId> {
        self.owner_of_hash(self.kind.hash(key))
    }

    /// The first `k` *distinct* agents at and after the successor of a
    /// pre-hashed key, in ring order. Used as a vertex's replica set
    /// (ElGA Figure 3). Returns fewer than `k` agents only when the ring
    /// holds fewer than `k`.
    pub fn owners_of_hash(&self, h: u64, k: usize) -> Vec<AgentId> {
        let mut out = Vec::with_capacity(k.min(self.agents.len()));
        if self.positions.is_empty() || k == 0 {
            return out;
        }
        let want = k.min(self.agents.len());
        let start = self.successor_index(h);
        for off in 0..self.positions.len() {
            let (_, agent) = self.positions[(start + off) % self.positions.len()];
            if !out.contains(&agent) {
                out.push(agent);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// [`Ring::owners_of_hash`] for an unhashed key.
    pub fn owners(&self, key: u64, k: usize) -> Vec<AgentId> {
        self.owners_of_hash(self.kind.hash(key), k)
    }

    /// Count how many of `keys` each agent owns; used by the Figure 5/6
    /// load-balance experiments. Returns `(agent, count)` pairs for every
    /// agent (including zero counts), sorted by agent id.
    pub fn assignment_counts(&self, keys: impl IntoIterator<Item = u64>) -> Vec<(AgentId, u64)> {
        let mut counts: Vec<(AgentId, u64)> = self.agents.iter().map(|&a| (a, 0)).collect();
        for key in keys {
            if let Some(owner) = self.owner(key) {
                let idx = counts.binary_search_by_key(&owner, |&(a, _)| a).unwrap();
                counts[idx].1 += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u64, v: u32) -> Ring {
        Ring::from_agents(HashKind::Wang, v, 0..n)
    }

    #[test]
    fn empty_ring_has_no_owner() {
        let r = Ring::new(HashKind::Wang, 10);
        assert!(r.is_empty());
        assert_eq!(r.owner(42), None);
        assert!(r.owners(42, 3).is_empty());
    }

    #[test]
    fn single_agent_owns_everything() {
        let r = ring(1, 7);
        for k in 0..100 {
            assert_eq!(r.owner(k), Some(0));
        }
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut r = ring(4, 16);
        assert!(r.contains(2));
        assert!(r.remove_agent(2));
        assert!(!r.contains(2));
        assert!(!r.remove_agent(2));
        assert!(r.add_agent(2));
        assert!(!r.add_agent(2));
        assert_eq!(r.len(), 4);
        // positions are sorted after all mutations
        assert!(r.positions.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn owners_are_distinct_and_bounded() {
        let r = ring(8, 32);
        for key in 0..200u64 {
            let owners = r.owners(key, 3);
            assert_eq!(owners.len(), 3);
            let set: std::collections::HashSet<_> = owners.iter().collect();
            assert_eq!(set.len(), 3, "replica set must be distinct agents");
        }
        // asking for more agents than exist returns all of them
        assert_eq!(r.owners(9, 100).len(), 8);
    }

    #[test]
    fn first_owner_consistent_with_owner() {
        let r = ring(16, 100);
        for key in 0..500u64 {
            assert_eq!(r.owners(key, 4)[0], r.owner(key).unwrap());
        }
    }

    #[test]
    fn minimal_movement_on_join() {
        let before = ring(16, 100);
        let mut after = before.clone();
        after.add_agent(999);
        let mut moved = 0;
        for key in 0..20_000u64 {
            let b = before.owner(key).unwrap();
            let a = after.owner(key).unwrap();
            if a != b {
                assert_eq!(a, 999, "keys may only move to the new agent");
                moved += 1;
            }
        }
        // Expect roughly 1/17 of keys to move.
        assert!(moved > 0);
        assert!((moved as f64) < 20_000.0 * 3.0 / 17.0);
    }

    #[test]
    fn minimal_movement_on_leave() {
        let before = ring(16, 100);
        let mut after = before.clone();
        after.remove_agent(7);
        for key in 0..20_000u64 {
            let b = before.owner(key).unwrap();
            let a = after.owner(key).unwrap();
            if b != 7 {
                assert_eq!(a, b, "only the departed agent's keys may move");
            } else {
                assert_ne!(a, 7);
            }
        }
    }

    #[test]
    fn virtual_agents_improve_balance() {
        let keys: Vec<u64> = (0..100_000).collect();
        let imbalance = |v: u32| {
            let r = ring(32, v);
            let counts = r.assignment_counts(keys.iter().copied());
            let max = counts.iter().map(|&(_, c)| c).max().unwrap() as f64;
            let avg = keys.len() as f64 / 32.0;
            max / avg
        };
        let coarse = imbalance(1);
        let fine = imbalance(100);
        assert!(
            fine < coarse,
            "100 virtual agents ({fine:.3}) should beat 1 ({coarse:.3})"
        );
        assert!(fine < 1.5, "imbalance with 100 virtual agents: {fine:.3}");
    }

    #[test]
    fn assignment_counts_cover_all_keys() {
        let r = ring(5, 10);
        let counts = r.assignment_counts(0..1234);
        assert_eq!(counts.iter().map(|&(_, c)| c).sum::<u64>(), 1234);
        assert_eq!(counts.len(), 5);
    }

    #[test]
    fn rebuild_matches_incremental_construction() {
        // Building from a full agent list must equal incremental joins —
        // a directory broadcasting a member list and an agent that saw
        // each join individually must agree on every ownership decision.
        let incremental = ring(12, 25);
        let rebuilt = Ring::from_agents(HashKind::Wang, 25, (0..12).rev());
        for key in 0..2_000u64 {
            assert_eq!(incremental.owner(key), rebuilt.owner(key));
            assert_eq!(incremental.owners(key, 3), rebuilt.owners(key, 3));
        }
    }
}
