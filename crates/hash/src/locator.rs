//! Two-level edge location (ElGA §3.4.1, Figure 3).
//!
//! Every Participant must be able to answer "which Agent owns edge
//! `(u, v)`?" using only a constant amount of global state. The locator
//! does this in three steps:
//!
//! 1. An (externally supplied) degree estimate for `u` — in the full
//!    system this comes from the broadcast count-min sketch — determines
//!    the *replication factor* `k = ceil(deg / threshold)`.
//! 2. The first consistent hash maps `u` to the `k` distinct successor
//!    agents on the ring: `u`'s replica set.
//! 3. A second consistent hash of the destination `v` over that replica
//!    set picks the single owner of edge `(u, v)`.
//!
//! For vertex-level operations where *any* replica suffices (e.g. client
//! queries), the second hash is bypassed and a replica is picked from a
//! caller-supplied salt (§3.4.1, "Efficiency reasons").

use crate::funcs::HashKind;
use crate::ring::{AgentId, Ring};
use serde::{Deserialize, Serialize};

/// Configuration of the locator's replication behaviour.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LocatorConfig {
    /// Estimated degree at which a vertex is split across one more
    /// agent. The paper uses thresholds in the millions (§3.3.1); tests
    /// and the scaled-down experiments use much smaller values.
    pub replication_threshold: u64,
    /// Hard cap on replicas per vertex (never exceeds the agent count).
    pub max_replicas: u32,
}

impl Default for LocatorConfig {
    fn default() -> Self {
        LocatorConfig {
            replication_threshold: 1 << 20,
            max_replicas: 64,
        }
    }
}

/// Resolves edges and vertices to owning agents.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeLocator {
    ring: Ring,
    config: LocatorConfig,
}

/// The fully resolved placement of one vertex under a fixed view: its
/// replication factor, replica set, and the pre-hashed second-level mini
/// ring. Computing this once per vertex amortises the CMS estimate, the
/// `O(log P·V)` ring walk, and the replica re-hash over every edge that
/// shares the source — the memo an [`crate::cache::OwnerCache`] stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexPlacement {
    /// Replication factor `k` derived from the degree estimate.
    pub k: u32,
    /// First replica (ring successor) — the vertex's primary owner.
    /// `None` only when the ring is empty.
    pub primary: Option<AgentId>,
    /// Full replica set in ring order from the successor.
    pub replicas: Vec<AgentId>,
    /// Second-level mini ring: `(hash(agent), agent)` sorted ascending.
    /// Empty when `k == 1` (no second hash needed).
    minis: Vec<(u64, AgentId)>,
}

impl EdgeLocator {
    /// Wrap a ring with replication settings.
    pub fn new(ring: Ring, config: LocatorConfig) -> Self {
        EdgeLocator { ring, config }
    }

    /// The underlying consistent-hash ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Mutable access to the ring (used when agents join or leave).
    pub fn ring_mut(&mut self) -> &mut Ring {
        &mut self.ring
    }

    /// The replication settings.
    pub fn config(&self) -> LocatorConfig {
        self.config
    }

    /// Hash function shared by both consistent-hash levels.
    #[inline]
    fn kind(&self) -> HashKind {
        self.ring.kind()
    }

    /// Replication factor for an estimated degree: 1 below the
    /// threshold, then one additional replica per threshold's worth of
    /// degree, capped by `max_replicas` and the agent count.
    #[inline]
    pub fn replication_factor(&self, estimated_degree: u64) -> u32 {
        let t = self.config.replication_threshold.max(1);
        let k = estimated_degree.div_ceil(t).max(1);
        let cap = u64::from(self.config.max_replicas).min(self.ring.len() as u64);
        k.min(cap.max(1)) as u32
    }

    /// The replica set of vertex `u`: the agents holding any of `u`'s
    /// edges. Order is ring order from `u`'s successor.
    pub fn replicas_of_vertex(&self, u: u64, estimated_degree: u64) -> Vec<AgentId> {
        let k = self.replication_factor(estimated_degree);
        self.ring.owners(u, k as usize)
    }

    /// Owner of edge `(u, v)` given `u`'s estimated degree.
    ///
    /// Returns `None` only when the ring is empty.
    pub fn owner_of_edge(&self, u: u64, v: u64, estimated_degree: u64) -> Option<AgentId> {
        let k = self.replication_factor(estimated_degree);
        if k == 1 {
            return self.ring.owner(u);
        }
        let replicas = self.ring.owners(u, k as usize);
        Some(Self::second_hash(self.kind(), &replicas, v))
    }

    /// Second-level consistent hash: place the replica agents on a mini
    /// ring by hashing their ids, then select the successor of
    /// `hash(v)`. Consistent hashing (rather than `hash(v) % k`) keeps
    /// edge movement minimal when the replication factor changes.
    #[inline]
    fn second_hash(kind: HashKind, replicas: &[AgentId], v: u64) -> AgentId {
        debug_assert!(!replicas.is_empty());
        let hv = kind.hash(v);
        let mut best: Option<(u64, AgentId)> = None; // smallest pos > hv
        let mut min: Option<(u64, AgentId)> = None; // wrap-around fallback
        for &a in replicas {
            let pos = kind.hash(a);
            let entry = (pos, a);
            if min.is_none_or(|m| entry < m) {
                min = Some(entry);
            }
            if pos > hv && best.is_none_or(|b| entry < b) {
                best = Some(entry);
            }
        }
        best.or(min).expect("nonempty replica set").1
    }

    /// Resolve the complete placement of vertex `u` once: replication
    /// factor, replica set, and the sorted second-level mini ring. All
    /// per-edge owner lookups for `u` then reduce to one hash plus a
    /// binary search via [`EdgeLocator::owner_from_placement`].
    pub fn placement(&self, u: u64, estimated_degree: u64) -> VertexPlacement {
        let k = self.replication_factor(estimated_degree);
        if k == 1 {
            let primary = self.ring.owner(u);
            return VertexPlacement {
                k,
                primary,
                replicas: primary.into_iter().collect(),
                minis: Vec::new(),
            };
        }
        let replicas = self.ring.owners(u, k as usize);
        let kind = self.kind();
        let mut minis: Vec<(u64, AgentId)> = replicas.iter().map(|&a| (kind.hash(a), a)).collect();
        minis.sort_unstable();
        VertexPlacement {
            k,
            primary: replicas.first().copied(),
            replicas,
            minis,
        }
    }

    /// Owner of edge `(u, v)` given `u`'s resolved placement. Returns
    /// exactly what [`EdgeLocator::owner_of_edge`] would for the same
    /// estimate: the mini ring is sorted by `(hash(agent), agent)`, so
    /// the successor of `hash(v)` — found by binary search — is the
    /// smallest entry greater than it, wrapping to the overall minimum.
    pub fn owner_from_placement(&self, p: &VertexPlacement, v: u64) -> Option<AgentId> {
        if p.minis.is_empty() {
            return p.primary;
        }
        let hv = self.kind().hash(v);
        let idx = p.minis.partition_point(|&(pos, _)| pos <= hv);
        let idx = if idx == p.minis.len() { 0 } else { idx };
        Some(p.minis[idx].1)
    }

    /// Some replica of `u`, chosen by `salt` (e.g. a per-query random
    /// value) — the fast path for vertex queries where any replica can
    /// answer.
    pub fn any_replica(&self, u: u64, estimated_degree: u64, salt: u64) -> Option<AgentId> {
        let replicas = self.replicas_of_vertex(u, estimated_degree);
        if replicas.is_empty() {
            return None;
        }
        let idx = (self.kind().hash(salt) % replicas.len() as u64) as usize;
        Some(replicas[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locator(agents: u64, threshold: u64) -> EdgeLocator {
        EdgeLocator::new(
            Ring::from_agents(HashKind::Wang, 100, 0..agents),
            LocatorConfig {
                replication_threshold: threshold,
                max_replicas: 16,
            },
        )
    }

    #[test]
    fn replication_factor_scales_with_degree() {
        let loc = locator(32, 100);
        assert_eq!(loc.replication_factor(0), 1);
        assert_eq!(loc.replication_factor(99), 1);
        assert_eq!(loc.replication_factor(100), 1);
        assert_eq!(loc.replication_factor(101), 2);
        assert_eq!(loc.replication_factor(1000), 10);
        // capped by max_replicas
        assert_eq!(loc.replication_factor(1_000_000), 16);
    }

    #[test]
    fn replication_capped_by_agent_count() {
        let loc = locator(3, 10);
        assert_eq!(loc.replication_factor(10_000), 3);
    }

    #[test]
    fn low_degree_edge_owner_matches_plain_ring() {
        let loc = locator(16, 1000);
        for u in 0..100u64 {
            let owner = loc.owner_of_edge(u, u + 1, 5).unwrap();
            assert_eq!(owner, loc.ring().owner(u).unwrap());
        }
    }

    #[test]
    fn high_degree_edges_spread_over_replica_set() {
        let loc = locator(32, 100);
        let u = 7;
        let deg = 450; // k = 5
        let replicas = loc.replicas_of_vertex(u, deg);
        assert_eq!(replicas.len(), 5);
        let mut used = std::collections::HashSet::new();
        for v in 0..deg {
            let owner = loc.owner_of_edge(u, v, deg).unwrap();
            assert!(replicas.contains(&owner));
            used.insert(owner);
        }
        assert!(
            used.len() >= 4,
            "destination hash should use most replicas, used {}",
            used.len()
        );
    }

    #[test]
    fn edge_owner_is_deterministic() {
        let loc = locator(8, 50);
        for (u, v) in [(1u64, 2u64), (1000, 3), (3, 1000)] {
            assert_eq!(loc.owner_of_edge(u, v, 500), loc.owner_of_edge(u, v, 500));
        }
    }

    #[test]
    fn growing_degree_estimate_moves_few_edges() {
        // When a vertex crosses a replication threshold, only edges that
        // rehash to the new replica should move: the second-level
        // consistent hash keeps the rest stable.
        let loc = locator(32, 100);
        let u = 42;
        let edges: Vec<u64> = (0..1000).collect();
        let before: Vec<_> = edges
            .iter()
            .map(|&v| loc.owner_of_edge(u, v, 250).unwrap()) // k = 3
            .collect();
        let after: Vec<_> = edges
            .iter()
            .map(|&v| loc.owner_of_edge(u, v, 350).unwrap()) // k = 4
            .collect();
        let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        assert!(
            moved < edges.len() / 2,
            "k 3->4 moved {moved} of {} edges",
            edges.len()
        );
    }

    #[test]
    fn any_replica_is_member_of_replica_set() {
        let loc = locator(16, 100);
        let replicas = loc.replicas_of_vertex(5, 500);
        for salt in 0..50u64 {
            let got = loc.any_replica(5, 500, salt).unwrap();
            assert!(replicas.contains(&got));
        }
    }

    #[test]
    fn placement_matches_per_edge_resolution() {
        // The cached path (placement + owner_from_placement) must agree
        // with the direct path (owner_of_edge) for every (u, v, est),
        // across k = 1 and k > 1 regimes.
        for agents in [1u64, 2, 3, 8, 32] {
            let loc = locator(agents, 100);
            for u in 0..64u64 {
                for est in [0u64, 1, 99, 101, 450, 10_000] {
                    let p = loc.placement(u, est);
                    assert_eq!(p.k, loc.replication_factor(est));
                    assert_eq!(p.replicas, loc.replicas_of_vertex(u, est));
                    assert_eq!(p.primary, loc.ring().owner(u));
                    for v in 0..64u64 {
                        assert_eq!(
                            loc.owner_from_placement(&p, v),
                            loc.owner_of_edge(u, v, est),
                            "agents={agents} u={u} v={v} est={est}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn placement_on_empty_ring() {
        let loc = EdgeLocator::new(Ring::new(HashKind::Wang, 4), LocatorConfig::default());
        let p = loc.placement(1, 0);
        assert_eq!(p.primary, None);
        assert!(p.replicas.is_empty());
        assert_eq!(loc.owner_from_placement(&p, 2), None);
    }

    #[test]
    fn empty_ring_yields_none() {
        let loc = EdgeLocator::new(Ring::new(HashKind::Wang, 4), LocatorConfig::default());
        assert_eq!(loc.owner_of_edge(1, 2, 0), None);
        assert_eq!(loc.any_replica(1, 0, 0), None);
    }
}
