//! A fast, non-cryptographic [`Hasher`] for in-memory hash maps.
//!
//! The paper stores its dynamic graph "as a flat hash map with vectors"
//! (§4); with SipHash (std's default) the per-vertex map operations
//! dominate. This is a from-scratch implementation of the Fx word-at-a-
//! time multiply-rotate hash used by rustc, which is the standard choice
//! for integer-keyed maps in performance-sensitive Rust.
//!
//! HashDoS resistance is irrelevant here: all keys are internal vertex
//! and agent identifiers.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiplicative hasher (Fx algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`]. Drop-in for `std::collections::HashMap`.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`]. Drop-in for `std::collections::HashSet`.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("elga"), hash_one("elga"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_one(1u64), hash_one(2u64));
        assert_ne!(hash_one((1u64, 2u64)), hash_one((2u64, 1u64)));
    }

    #[test]
    fn byte_stream_tail_lengths_differ() {
        // The padded-tail encoding must not alias different lengths.
        let mut a = FxHasher::default();
        a.write(&[1, 0]);
        let mut b = FxHasher::default();
        b.write(&[1]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_basic_usage() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(11, "eleven");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.len(), 2);

        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(3));
        assert!(!s.insert(3));
    }

    #[test]
    fn collision_rate_reasonable_for_sequential_keys() {
        let mut buckets = vec![0u32; 1024];
        for k in 0..100_000u64 {
            buckets[(hash_one(k) >> 54) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        let avg = 100_000 / 1024;
        assert!(max < avg * 3, "bucket skew too high: {max} vs {avg}");
    }
}
