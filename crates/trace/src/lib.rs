//! Lock-cheap event tracing for ElGA participants.
//!
//! Every participant (agent, directory, streamer) can own a [`Tracer`]:
//! a bounded ring buffer of typed, timestamped [`TraceEvent`]s. The
//! design goals, in order:
//!
//! 1. **Near-zero disabled cost.** Every record path starts with one
//!    relaxed atomic load ([`Tracer::enabled`]); a disabled tracer
//!    never takes a lock, never reads the clock, never allocates.
//! 2. **Bounded memory.** The ring keeps the most recent `capacity`
//!    events and counts what it overwrote, so a long run degrades to
//!    "recent history plus a dropped count" instead of unbounded
//!    growth.
//! 3. **One shared timebase.** All tracers in a process timestamp
//!    against the same lazily-initialized epoch, so buffers collected
//!    from different threads merge into one coherent timeline.
//!
//! Buffers are drained over the wire ([`encode_events`] /
//! [`decode_events`]) and rendered with [`chrome_trace_json`] into the
//! Chrome Trace Event Format, loadable in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev) with one track per participant.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity (events per participant).
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Reason codes carried in the `a` slot of [`EventKind::CoalesceFlush`].
pub mod flush_reason {
    /// The open frame reached the size threshold.
    pub const SIZE: u64 = 0;
    /// The open frame reached the record-count threshold.
    pub const COUNT: u64 = 1;
    /// An explicit flush (end of batch / superstep idle).
    pub const EXPLICIT: u64 = 2;
    /// A differently-typed record forced the open frame out.
    pub const SWITCH: u64 = 3;

    /// Human-readable name for a reason code.
    pub fn name(reason: u64) -> &'static str {
        match reason {
            SIZE => "size",
            COUNT => "count",
            EXPLICIT => "explicit",
            SWITCH => "switch",
            _ => "unknown",
        }
    }
}

/// The event taxonomy. Two shapes: *spans* (have a duration — rendered
/// as Chrome `"X"` complete events) and *instants* (rendered as `"i"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Sync scatter phase (span; `a` = run id, `b` = step).
    PhaseScatter = 0,
    /// Sync combine phase (span; `a` = run id, `b` = step).
    PhaseCombine = 1,
    /// Sync apply phase (span; `a` = run id, `b` = step).
    PhaseApply = 2,
    /// A participant adopted a new directory view (`a` = epoch,
    /// `b` = agent count).
    ViewAdopt = 3,
    /// Outboxes retired on a membership change (`a` = epoch,
    /// `b` = outboxes retired).
    ViewRetire = 4,
    /// A migration bundle left for a peer (`a` = destination agent,
    /// `b` = records in the bundle).
    MigrateSend = 5,
    /// A migration frame arrived (`a` = records received).
    MigrateRecv = 6,
    /// Recovery began (`a` = new epoch, `b` = dead agent).
    RecoveryTrigger = 7,
    /// The streamer re-routed retained change records (span;
    /// `a` = records replayed, `b` = placement records pushed).
    RecoveryReplay = 8,
    /// A coalescing outbox closed a frame (`a` = [`flush_reason`],
    /// `b` = frame bytes).
    CoalesceFlush = 9,
    /// A send blocked on the credit window (span; `a` = frame bytes).
    BackpressureWait = 10,
    /// The failure detector saw a silent agent (`a` = agent,
    /// `b` = window millis).
    HeartbeatMiss = 11,
    /// An async-mode agent resumed after a mid-run view change by
    /// re-broadcasting its primary vertices' states for re-scatter
    /// under the adopted view (`a` = epoch, `b` = vertices
    /// re-broadcast).
    AsyncRescatter = 12,
    /// An agent serialized and durably wrote one checkpoint shard
    /// (span; `a` = checkpoint generation, `b` = payload bytes).
    CkptWrite = 13,
    /// A checkpoint shard was loaded and re-injected during recovery
    /// (span; `a` = checkpoint generation, `b` = payload bytes).
    CkptRestore = 14,
    /// The streamer's retained change log exceeded its configured cap
    /// (`a` = retained records, `b` = retained bytes).
    ChangeLogWarn = 15,
    /// Recovery finished end-to-end: eviction through restored cluster
    /// (span; `a` = new epoch, `b` = change records replayed).
    RecoveryDone = 16,
}

impl EventKind {
    /// All kinds, for iteration in tests and exporters.
    pub const ALL: [EventKind; 17] = [
        EventKind::PhaseScatter,
        EventKind::PhaseCombine,
        EventKind::PhaseApply,
        EventKind::ViewAdopt,
        EventKind::ViewRetire,
        EventKind::MigrateSend,
        EventKind::MigrateRecv,
        EventKind::RecoveryTrigger,
        EventKind::RecoveryReplay,
        EventKind::CoalesceFlush,
        EventKind::BackpressureWait,
        EventKind::HeartbeatMiss,
        EventKind::AsyncRescatter,
        EventKind::CkptWrite,
        EventKind::CkptRestore,
        EventKind::ChangeLogWarn,
        EventKind::RecoveryDone,
    ];

    /// Wire tag.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Inverse of [`EventKind::as_u8`].
    pub fn from_u8(tag: u8) -> Option<EventKind> {
        EventKind::ALL.get(tag as usize).copied()
    }

    /// Display name (the Chrome-trace event name).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PhaseScatter => "scatter",
            EventKind::PhaseCombine => "combine",
            EventKind::PhaseApply => "apply",
            EventKind::ViewAdopt => "view_adopt",
            EventKind::ViewRetire => "view_retire",
            EventKind::MigrateSend => "migrate_send",
            EventKind::MigrateRecv => "migrate_recv",
            EventKind::RecoveryTrigger => "recovery_trigger",
            EventKind::RecoveryReplay => "recovery_replay",
            EventKind::CoalesceFlush => "coalesce_flush",
            EventKind::BackpressureWait => "backpressure_wait",
            EventKind::HeartbeatMiss => "heartbeat_miss",
            EventKind::AsyncRescatter => "async_rescatter",
            EventKind::CkptWrite => "ckpt_write",
            EventKind::CkptRestore => "ckpt_restore",
            EventKind::ChangeLogWarn => "change_log_warn",
            EventKind::RecoveryDone => "recovery_done",
        }
    }

    /// Whether events of this kind carry a duration.
    pub fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::PhaseScatter
                | EventKind::PhaseCombine
                | EventKind::PhaseApply
                | EventKind::RecoveryReplay
                | EventKind::BackpressureWait
                | EventKind::CkptWrite
                | EventKind::CkptRestore
                | EventKind::RecoveryDone
        )
    }
}

/// One recorded event. `a` and `b` are kind-specific arguments (see
/// the [`EventKind`] variant docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// Nanoseconds since the process-wide trace epoch.
    pub ts_nanos: u64,
    /// Span length in nanoseconds (0 for instants).
    pub dur_nanos: u64,
    /// First kind-specific argument.
    pub a: u64,
    /// Second kind-specific argument.
    pub b: u64,
}

/// The process-wide timebase all tracers stamp against.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch.
pub fn now_nanos() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

struct Ring {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Next write position once `buf` has grown to `cap`.
    next: usize,
    dropped: u64,
}

/// A per-participant event recorder.
///
/// Cheap to share (`Arc<Tracer>`), cheap when disabled (one relaxed
/// atomic load per record attempt), bounded when enabled (ring of
/// `capacity` events, oldest overwritten first).
pub struct Tracer {
    enabled: AtomicBool,
    ring: Mutex<Ring>,
}

impl Tracer {
    /// An enabled tracer keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> Tracer {
        let cap = capacity.max(1);
        Tracer {
            enabled: AtomicBool::new(true),
            ring: Mutex::new(Ring {
                buf: Vec::new(),
                cap,
                next: 0,
                dropped: 0,
            }),
        }
    }

    /// A permanently-disabled tracer: every record call is a single
    /// relaxed load and an early return.
    pub fn disabled() -> Tracer {
        Tracer {
            enabled: AtomicBool::new(false),
            ring: Mutex::new(Ring {
                buf: Vec::new(),
                cap: 1,
                next: 0,
                dropped: 0,
            }),
        }
    }

    /// Build from a config knob: enabled at [`DEFAULT_CAPACITY`] when
    /// `on`, disabled otherwise.
    pub fn from_flag(on: bool) -> Tracer {
        if on {
            Tracer::new(DEFAULT_CAPACITY)
        } else {
            Tracer::disabled()
        }
    }

    /// Whether records are being kept. Callers use this to skip
    /// argument computation on the disabled path.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record an instantaneous event, stamped now.
    #[inline]
    pub fn instant(&self, kind: EventKind, a: u64, b: u64) {
        if !self.enabled() {
            return;
        }
        self.record(TraceEvent {
            kind,
            ts_nanos: now_nanos(),
            dur_nanos: 0,
            a,
            b,
        });
    }

    /// Record a span that began at `started` and ends now.
    #[inline]
    pub fn span(&self, kind: EventKind, started: Instant, a: u64, b: u64) {
        if !self.enabled() {
            return;
        }
        self.record(TraceEvent {
            kind,
            ts_nanos: started.saturating_duration_since(epoch()).as_nanos() as u64,
            dur_nanos: started.elapsed().as_nanos() as u64,
            a,
            b,
        });
    }

    /// Record a pre-built event (timestamps already filled in).
    pub fn record(&self, ev: TraceEvent) {
        if !self.enabled() {
            return;
        }
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.buf.len() < ring.cap {
            ring.buf.push(ev);
        } else {
            let i = ring.next;
            ring.buf[i] = ev;
            ring.next = (i + 1) % ring.cap;
            ring.dropped += 1;
        }
    }

    /// Take the buffered events in chronological order, plus the count
    /// of events the ring overwrote; the buffer is left empty.
    pub fn drain(&self) -> (Vec<TraceEvent>, u64) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let next = ring.next;
        let mut events = std::mem::take(&mut ring.buf);
        // The ring wrapped: the oldest surviving event sits at `next`.
        let pivot = next.min(events.len());
        events.rotate_left(pivot);
        ring.next = 0;
        let dropped = std::mem::take(&mut ring.dropped);
        (events, dropped)
    }
}

// ---------------------------------------------------------------------
// Wire codec (plain bytes; the caller wraps them in its own framing)
// ---------------------------------------------------------------------

/// Serialize a drained buffer: `dropped`, `count`, then per event
/// `kind u8, ts u64, dur u64, a u64, b u64` (little-endian).
pub fn encode_events(events: &[TraceEvent], dropped: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + events.len() * 33);
    out.extend_from_slice(&dropped.to_le_bytes());
    out.extend_from_slice(&(events.len() as u64).to_le_bytes());
    for ev in events {
        out.push(ev.kind.as_u8());
        out.extend_from_slice(&ev.ts_nanos.to_le_bytes());
        out.extend_from_slice(&ev.dur_nanos.to_le_bytes());
        out.extend_from_slice(&ev.a.to_le_bytes());
        out.extend_from_slice(&ev.b.to_le_bytes());
    }
    out
}

/// Inverse of [`encode_events`]. Returns `(events, dropped)`.
pub fn decode_events(buf: &[u8]) -> Option<(Vec<TraceEvent>, u64)> {
    fn u64_at(buf: &[u8], at: usize) -> Option<u64> {
        Some(u64::from_le_bytes(buf.get(at..at + 8)?.try_into().ok()?))
    }
    let dropped = u64_at(buf, 0)?;
    let count = u64_at(buf, 8)? as usize;
    let mut events = Vec::with_capacity(count.min(1 << 20));
    let mut at = 16;
    for _ in 0..count {
        let kind = EventKind::from_u8(*buf.get(at)?)?;
        events.push(TraceEvent {
            kind,
            ts_nanos: u64_at(buf, at + 1)?,
            dur_nanos: u64_at(buf, at + 9)?,
            a: u64_at(buf, at + 17)?,
            b: u64_at(buf, at + 25)?,
        });
        at += 33;
    }
    Some((events, dropped))
}

// ---------------------------------------------------------------------
// Chrome Trace Event Format export
// ---------------------------------------------------------------------

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_args(ev: &TraceEvent, out: &mut String) {
    let (ka, kb) = match ev.kind {
        EventKind::PhaseScatter | EventKind::PhaseCombine | EventKind::PhaseApply => {
            ("run", Some("step"))
        }
        EventKind::ViewAdopt => ("epoch", Some("agents")),
        EventKind::ViewRetire => ("epoch", Some("outboxes")),
        EventKind::MigrateSend => ("dest", Some("records")),
        EventKind::MigrateRecv => ("records", None),
        EventKind::RecoveryTrigger => ("epoch", Some("dead_agent")),
        EventKind::RecoveryReplay => ("records", Some("pushed")),
        EventKind::CoalesceFlush => ("reason", Some("bytes")),
        EventKind::BackpressureWait => ("bytes", None),
        EventKind::HeartbeatMiss => ("agent", Some("window_ms")),
        EventKind::AsyncRescatter => ("epoch", Some("vertices")),
        EventKind::CkptWrite | EventKind::CkptRestore => ("generation", Some("bytes")),
        EventKind::ChangeLogWarn => ("records", Some("bytes")),
        EventKind::RecoveryDone => ("epoch", Some("replayed")),
    };
    out.push_str("{\"");
    out.push_str(ka);
    out.push_str("\":");
    if ev.kind == EventKind::CoalesceFlush {
        out.push('"');
        out.push_str(flush_reason::name(ev.a));
        out.push('"');
    } else {
        out.push_str(&ev.a.to_string());
    }
    if let Some(kb) = kb {
        out.push_str(",\"");
        out.push_str(kb);
        out.push_str("\":");
        out.push_str(&ev.b.to_string());
    }
    out.push('}');
}

/// Render per-participant buffers as Chrome Trace Event Format JSON —
/// one `tid` (track) per participant, timestamps in microseconds.
/// Loadable in `chrome://tracing` and <https://ui.perfetto.dev>.
pub fn chrome_trace_json(tracks: &[(String, Vec<TraceEvent>)]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (tid, (name, events)) in tracks.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        // Track metadata: give the tid a human name.
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\""
        ));
        json_escape(name, &mut out);
        out.push_str("\"}}");
        for ev in events {
            let ts_us = ev.ts_nanos as f64 / 1000.0;
            out.push(',');
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us:.3},",
                ev.kind.name()
            ));
            if ev.kind.is_span() {
                let dur_us = ev.dur_nanos as f64 / 1000.0;
                out.push_str(&format!("\"ph\":\"X\",\"dur\":{dur_us:.3},"));
            } else {
                out.push_str("\"ph\":\"i\",\"s\":\"t\",");
            }
            out.push_str("\"args\":");
            push_args(ev, &mut out);
            out.push('}');
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, ts: u64, a: u64) -> TraceEvent {
        TraceEvent {
            kind,
            ts_nanos: ts,
            dur_nanos: 0,
            a,
            b: 0,
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_dropped() {
        let t = Tracer::new(4);
        for i in 0..10u64 {
            t.record(ev(EventKind::ViewAdopt, i, i));
        }
        let (events, dropped) = t.drain();
        assert_eq!(dropped, 6);
        assert_eq!(events.len(), 4);
        let ids: Vec<u64> = events.iter().map(|e| e.a).collect();
        assert_eq!(ids, vec![6, 7, 8, 9], "chronological, most recent kept");
    }

    #[test]
    fn drain_resets_the_ring() {
        let t = Tracer::new(4);
        t.instant(EventKind::HeartbeatMiss, 1, 2);
        let (events, dropped) = t.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(dropped, 0);
        let (events, dropped) = t.drain();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn disabled_tracer_is_a_no_op() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.instant(EventKind::ViewAdopt, 1, 2);
        t.span(EventKind::PhaseScatter, Instant::now(), 1, 2);
        t.record(ev(EventKind::MigrateSend, 0, 0));
        let (events, dropped) = t.drain();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn spans_carry_durations_instants_do_not() {
        let t = Tracer::new(16);
        let started = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.span(EventKind::PhaseApply, started, 7, 3);
        t.instant(EventKind::MigrateRecv, 42, 0);
        let (events, _) = t.drain();
        assert_eq!(events.len(), 2);
        assert!(events[0].dur_nanos >= 1_000_000, "slept ≥2ms");
        assert_eq!(events[1].dur_nanos, 0);
        assert!(events[1].ts_nanos >= events[0].ts_nanos);
    }

    #[test]
    fn kind_tags_roundtrip() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_u8(kind.as_u8()), Some(kind));
        }
        assert_eq!(EventKind::from_u8(200), None);
    }

    #[test]
    fn wire_roundtrip() {
        let events = vec![
            TraceEvent {
                kind: EventKind::CoalesceFlush,
                ts_nanos: 123,
                dur_nanos: 0,
                a: flush_reason::SIZE,
                b: 61440,
            },
            TraceEvent {
                kind: EventKind::PhaseScatter,
                ts_nanos: 456,
                dur_nanos: 789,
                a: 1,
                b: 2,
            },
        ];
        let bytes = encode_events(&events, 17);
        assert_eq!(decode_events(&bytes), Some((events, 17)));
        assert_eq!(decode_events(&bytes[..bytes.len() - 1]), None, "truncated");
        assert_eq!(decode_events(&[]), None);
    }

    // -----------------------------------------------------------------
    // A minimal JSON well-formedness checker (no serde in this tree).
    // -----------------------------------------------------------------
    fn skip_ws(s: &[u8], mut i: usize) -> usize {
        while i < s.len() && (s[i] as char).is_ascii_whitespace() {
            i += 1;
        }
        i
    }

    fn parse_value(s: &[u8], i: usize) -> Option<usize> {
        let i = skip_ws(s, i);
        match *s.get(i)? {
            b'{' => parse_seq(s, i + 1, b'}', true),
            b'[' => parse_seq(s, i + 1, b']', false),
            b'"' => parse_string(s, i),
            b't' => s[i..].starts_with(b"true").then_some(i + 4),
            b'f' => s[i..].starts_with(b"false").then_some(i + 5),
            b'n' => s[i..].starts_with(b"null").then_some(i + 4),
            _ => parse_number(s, i),
        }
    }

    fn parse_seq(s: &[u8], mut i: usize, close: u8, keyed: bool) -> Option<usize> {
        i = skip_ws(s, i);
        if *s.get(i)? == close {
            return Some(i + 1);
        }
        loop {
            if keyed {
                i = parse_string(s, skip_ws(s, i))?;
                i = skip_ws(s, i);
                if *s.get(i)? != b':' {
                    return None;
                }
                i += 1;
            }
            i = parse_value(s, i)?;
            i = skip_ws(s, i);
            match *s.get(i)? {
                b',' => i += 1,
                c if c == close => return Some(i + 1),
                _ => return None,
            }
        }
    }

    fn parse_string(s: &[u8], i: usize) -> Option<usize> {
        if *s.get(i)? != b'"' {
            return None;
        }
        let mut i = i + 1;
        loop {
            match *s.get(i)? {
                b'"' => return Some(i + 1),
                b'\\' => i += 2,
                c if c < 0x20 => return None,
                _ => i += 1,
            }
        }
    }

    fn parse_number(s: &[u8], mut i: usize) -> Option<usize> {
        let start = i;
        while i < s.len() && matches!(s[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            i += 1;
        }
        (i > start).then_some(i)
    }

    fn is_well_formed(json: &str) -> bool {
        let s = json.as_bytes();
        match parse_value(s, 0) {
            Some(end) => skip_ws(s, end) == s.len(),
            None => false,
        }
    }

    #[test]
    fn json_checker_sanity() {
        assert!(is_well_formed(r#"{"a":[1,2,{"b":"c\"d"}],"e":null}"#));
        assert!(!is_well_formed(r#"{"a":1"#));
        assert!(!is_well_formed(r#"{"a" 1}"#));
        assert!(!is_well_formed(r#"{"a":1} trailing"#));
    }

    #[test]
    fn chrome_trace_is_well_formed_json() {
        let mut events = Vec::new();
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            events.push(TraceEvent {
                kind: *kind,
                ts_nanos: i as u64 * 1000,
                dur_nanos: if kind.is_span() { 500 } else { 0 },
                a: if *kind == EventKind::CoalesceFlush {
                    flush_reason::COUNT
                } else {
                    i as u64
                },
                b: i as u64 + 1,
            });
        }
        let tracks = vec![
            ("agent-0 \"quoted\"".to_string(), events),
            ("directory-0".to_string(), Vec::new()),
        ];
        let json = chrome_trace_json(&tracks);
        assert!(is_well_formed(&json), "not valid JSON: {json}");
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ph\":\"X\""), "has span events");
        assert!(json.contains("\"ph\":\"i\""), "has instant events");
        assert!(json.contains("\\\"quoted\\\""), "escapes track names");
        assert!(json.contains("\"reason\":\"count\""));
    }

    #[test]
    fn empty_trace_is_well_formed() {
        assert!(is_well_formed(&chrome_trace_json(&[])));
    }

    #[test]
    fn flush_reason_names() {
        assert_eq!(flush_reason::name(flush_reason::SIZE), "size");
        assert_eq!(flush_reason::name(flush_reason::SWITCH), "switch");
        assert_eq!(flush_reason::name(99), "unknown");
    }
}
