//! Fault-injection tests: ElGA must produce fault-free results over a
//! transport that drops, delays, and duplicates frames, and must
//! detect, evict, and recover from an agent that dies mid-run without
//! the LEAVE drain protocol.
//!
//! Every fault sequence is driven by a fixed seed, so failures here
//! reproduce deterministically.

use elga::core::program::{ExecutionMode, RunOptions};
use elga::graph::csr::Csr;
use elga::graph::reference;
use elga::net::{FaultPlan, SendPolicy};
use elga::prelude::*;
use std::time::Duration;

/// A deterministic ring-with-chords graph: connected, with enough
/// degree skew to exercise routing, small enough that chaos runs stay
/// fast.
fn chain_graph(n: u64) -> Vec<(u64, u64)> {
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n));
        if i % 3 == 0 {
            edges.push((i, (i * 7 + 3) % n));
        }
    }
    edges.retain(|&(u, v)| u != v);
    edges.sort_unstable();
    edges.dedup();
    edges
}

fn densify(edges: &[(u64, u64)]) -> (Vec<u64>, Vec<(u64, u64)>) {
    let mut ids: Vec<u64> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
    ids.sort_unstable();
    ids.dedup();
    let index: std::collections::HashMap<u64, u64> = ids
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u64))
        .collect();
    let dense = edges.iter().map(|&(u, v)| (index[&u], index[&v])).collect();
    (ids, dense)
}

/// Config for runs over a faulty transport: a deeper retry budget (so
/// driver REQ/REP survives repeated drop rolls) and deadlines that
/// cover retransmission latency.
fn chaos_config() -> SystemConfig {
    SystemConfig {
        request_timeout: Duration::from_secs(5),
        send_policy: SendPolicy {
            retries: 6,
            base_delay: Duration::from_millis(2),
            deadline: Duration::from_secs(10),
        },
        quiesce_deadline: Duration::from_secs(60),
        run_deadline: Duration::from_secs(120),
        ..SystemConfig::default()
    }
}

#[test]
fn chaos_pagerank_and_wcc_match_fault_free_results() {
    let edges = chain_graph(120);
    // 5% drop, 1% duplicate, 0-5ms delay on every data-plane route.
    let plan = FaultPlan::uniform(0.05, 0.01, Duration::ZERO, Duration::from_millis(5));
    let mut chaos = Cluster::builder()
        .agents(4)
        .config(chaos_config())
        .chaos(plan, 0xE16A)
        .build();
    let mut clean = Cluster::builder().agents(4).config(chaos_config()).build();
    chaos.ingest_edges(edges.iter().copied());
    clean.ingest_edges(edges.iter().copied());

    chaos
        .run(PageRank::new(0.85).with_max_iters(10))
        .expect("chaos pagerank");
    clean
        .run(PageRank::new(0.85).with_max_iters(10))
        .expect("clean pagerank");
    let got = chaos.dump_states();
    let want = clean.dump_states();
    assert_eq!(got.len(), want.len(), "same vertex set");
    for (v, &bits) in &want {
        let w = f64::from_bits(bits);
        let g = f64::from_bits(*got.get(v).unwrap_or_else(|| panic!("missing v{v}")));
        assert!((g - w).abs() < 1e-9, "pagerank v{v}: {g} vs {w}");
    }

    chaos.run(Wcc::new()).expect("chaos wcc");
    let truth = reference::wcc(edges.iter().copied());
    for &(u, _) in &edges {
        assert_eq!(chaos.query_u64(u), Some(truth[&u]), "wcc v{u}");
    }

    // The fault layer must have actually interfered.
    let stats = chaos.fault().expect("chaos handle").stats();
    assert!(stats.dropped() > 0, "no frames dropped — chaos was a no-op");
    assert!(chaos.metrics().messages_dropped > 0);

    chaos.shutdown();
    clean.shutdown();
}

#[test]
fn chaos_async_wcc_matches_reference() {
    // The asynchronous engine's termination detection (idle reports +
    // double probe) must hold over a transport that drops, delays and
    // duplicates frames: the reliability layer recovers every frame,
    // and the probe only confirms once the recovered counters settle
    // twice with identical sums.
    let edges = chain_graph(120);
    let plan = FaultPlan::uniform(0.05, 0.01, Duration::ZERO, Duration::from_millis(5));
    let mut chaos = Cluster::builder()
        .agents(4)
        .config(chaos_config())
        .chaos(plan, 0xA51C)
        .build();
    chaos.ingest_edges(edges.iter().copied());
    chaos
        .run_with(
            Wcc::new(),
            RunOptions {
                reuse_state: false,
                mode: ExecutionMode::Async,
            },
        )
        .expect("chaos async wcc");
    let truth = reference::wcc(edges.iter().copied());
    for &(u, _) in &edges {
        assert_eq!(chaos.query_u64(u), Some(truth[&u]), "wcc v{u}");
    }
    let stats = chaos.fault().expect("chaos handle").stats();
    assert!(stats.dropped() > 0, "no frames dropped — chaos was a no-op");
    chaos.shutdown();
}

#[test]
fn killed_agent_mid_async_run_recovers_to_correct_results() {
    // An agent dying mid-async-run leaves its primaries unprocessed,
    // so the run cannot quiesce until failure detection evicts it and
    // RECOVER aborts the run; the driver then replays the retained
    // change log and restarts the run — still asynchronous. The graph
    // is large enough that the KILL (sent the instant the run starts)
    // always lands while the run is live.
    let edges = chain_graph(2000);
    let cfg = SystemConfig {
        heartbeat_interval: Duration::from_millis(25),
        heartbeat_misses: 40,
        quiesce_deadline: Duration::from_secs(30),
        run_deadline: Duration::from_secs(60),
        ..SystemConfig::default()
    };
    let mut cluster = Cluster::builder().agents(4).config(cfg).build();
    cluster.ingest_edges(edges.iter().copied());

    let handle = cluster
        .start_run(
            Wcc::new(),
            RunOptions {
                reuse_state: false,
                mode: ExecutionMode::Async,
            },
        )
        .expect("start async run");
    let victim = cluster.agent_ids()[1];
    cluster.kill_agent(victim);
    cluster
        .wait_run(handle)
        .expect("async run must complete despite the crash");

    assert_eq!(cluster.agent_count(), 3, "victim evicted from the view");
    assert!(cluster.metrics().agents_recovered >= 1);
    let truth = reference::wcc(edges.iter().copied());
    for &(u, _) in &edges {
        assert_eq!(cluster.query_u64(u), Some(truth[&u]), "wcc v{u}");
    }
    cluster.shutdown();
}

#[test]
fn killed_agent_is_evicted_and_run_restarts_to_correct_results() {
    let edges = chain_graph(150);
    let cfg = SystemConfig {
        // Fast failure detection so the test turns around quickly:
        // 25ms heartbeats, dead after 40 missed (1s of silence —
        // enough slack that scheduler starvation on a loaded runner
        // cannot read as death).
        heartbeat_interval: Duration::from_millis(25),
        heartbeat_misses: 40,
        quiesce_deadline: Duration::from_secs(30),
        run_deadline: Duration::from_secs(60),
        ..SystemConfig::default()
    };
    let mut cluster = Cluster::builder().agents(4).config(cfg).build();
    cluster.ingest_edges(edges.iter().copied());
    assert_eq!(cluster.agent_count(), 4);

    let iters = 40u32;
    let handle = cluster
        .start_run(
            PageRank::new(0.85).with_max_iters(iters),
            RunOptions::default(),
        )
        .expect("start run");
    // Crash an agent mid-run: the barrier wedges on its silence until
    // the lead evicts it and broadcasts RECOVER; wait_run then replays
    // the change log and restarts the run.
    let victim = cluster.agent_ids()[1];
    cluster.kill_agent(victim);
    let stats = cluster
        .wait_run(handle)
        .expect("run must complete despite the crash");

    let (ids, dense) = densify(&edges);
    assert_eq!(
        stats.n_vertices,
        ids.len() as u64,
        "replay restored every vertex"
    );
    assert_eq!(cluster.agent_count(), 3, "victim evicted from the view");
    assert!(!cluster.agent_ids().contains(&victim));
    assert!(cluster.metrics().agents_recovered >= 1);

    // Results equal the fault-free single-threaded reference.
    let csr = Csr::from_edges(Some(ids.len()), &dense);
    let want = reference::pagerank(&csr, 0.85, iters as usize);
    for (i, &orig) in ids.iter().enumerate() {
        let got = cluster.query_f64(orig).expect("rank");
        assert!(
            (got - want[i]).abs() < reference::PAGERANK_TOLERANCE,
            "v{orig}: {got} vs {}",
            want[i]
        );
    }
    cluster.shutdown();
}
