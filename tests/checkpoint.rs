//! Durable checkpointing and bounded recovery: checkpoints truncate
//! the retained change log, recovery restores the newest valid
//! generation and replays only the suffix, and injected disk faults
//! (torn writes, corruption) degrade to an older generation or a
//! refused commit — never to a wrong answer.
//!
//! Every fault sequence is either deterministic on-disk damage or a
//! fixed-seed injector, so failures reproduce exactly.

use elga::core::program::{ExecutionMode, RunOptions};
use elga::graph::reference;
use elga::net::{DiskFault, NetError};
use elga::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

/// A deterministic ring-with-chords graph (same shape as the chaos
/// suite): connected, skewed enough to exercise routing.
fn chain_graph(n: u64) -> Vec<(u64, u64)> {
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n));
        if i % 3 == 0 {
            edges.push((i, (i * 7 + 3) % n));
        }
    }
    edges.retain(|&(u, v)| u != v);
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Fresh checkpoint directory under the system temp dir, unique per
/// test so parallel runs never collide.
fn ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("elga-ckpt-it-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Fast failure detection so crash tests turn around quickly.
fn recovery_config() -> SystemConfig {
    SystemConfig {
        heartbeat_interval: Duration::from_millis(25),
        heartbeat_misses: 40,
        quiesce_deadline: Duration::from_secs(30),
        run_deadline: Duration::from_secs(60),
        ..SystemConfig::default()
    }
}

/// Damage every shard of `generation` with a torn write: keep only the
/// first half of the file, exactly what a crash mid-checkpoint leaves.
fn tear_generation(dir: &PathBuf, generation: u64) {
    let prefix = format!("g{generation:08}-");
    let mut torn = 0;
    for entry in fs::read_dir(dir).expect("checkpoint dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.starts_with(&prefix) && name.ends_with(".shard") {
            let data = fs::read(&path).expect("read shard");
            fs::write(&path, &data[..data.len() / 2]).expect("tear shard");
            torn += 1;
        }
    }
    assert!(torn > 0, "no shards found for generation {generation}");
}

#[test]
fn checkpoint_truncates_log_and_tracks_watermarks() {
    let dir = ckpt_dir("arith");
    let first = chain_graph(60);
    let second: Vec<(u64, u64)> = chain_graph(90)
        .into_iter()
        .filter(|e| !first.contains(e))
        .collect();
    let third = [(300u64, 301u64), (301, 302), (302, 300)];
    let mut cluster = Cluster::builder().agents(3).checkpoints(&dir).build();

    cluster.ingest_edges(first.iter().copied());
    let w1 = first.len() as u64;
    let (retained, bytes, base, ingested) = cluster.change_log_stats();
    assert_eq!((retained, base, ingested), (w1, 0, w1));
    assert!(bytes > 0);

    // Generation 1 commits at watermark w1; with only one retained
    // generation the log truncates all the way to it.
    let rep = cluster.checkpoint().expect("checkpoint 1");
    assert!(rep.committed, "clean disk must commit");
    assert_eq!((rep.generation, rep.watermark), (1, w1));
    assert!(rep.bytes > 0);
    let (retained, _, base, ingested) = cluster.change_log_stats();
    assert_eq!((retained, base, ingested), (0, w1, w1));

    // Generation 2: the default keep=2 retains generation 1 too, so
    // the log may only truncate to w1 — the fallback ladder must still
    // be able to replay from the older generation's watermark.
    cluster.ingest_edges(second.iter().copied());
    let w2 = w1 + second.len() as u64;
    let rep = cluster.checkpoint().expect("checkpoint 2");
    assert!(rep.committed);
    assert_eq!((rep.generation, rep.watermark), (2, w2));
    let (retained, _, base, ingested) = cluster.change_log_stats();
    assert_eq!((retained, base, ingested), (second.len() as u64, w1, w2));

    // Generation 3 prunes generation 1; the oldest retained watermark
    // advances to w2 and the log drops the second batch.
    cluster.ingest_edges(third.iter().copied());
    let w3 = w2 + third.len() as u64;
    let rep = cluster.checkpoint().expect("checkpoint 3");
    assert!(rep.committed);
    assert_eq!((rep.generation, rep.watermark), (3, w3));
    let (retained, _, base, _) = cluster.change_log_stats();
    assert_eq!((retained, base), (third.len() as u64, w2));

    cluster.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn crash_after_checkpoint_replays_only_the_suffix() {
    let dir = ckpt_dir("suffix");
    let edges = chain_graph(600);
    let (first, second) = edges.split_at(edges.len() / 2);
    let mut cluster = Cluster::builder()
        .agents(4)
        .config(recovery_config())
        .checkpoints(&dir)
        .build();

    cluster.ingest_edges(first.iter().copied());
    assert!(cluster.checkpoint().expect("checkpoint").committed);
    cluster.ingest_edges(second.iter().copied());

    let handle = cluster
        .start_run(Wcc::new(), RunOptions::default())
        .expect("start run");
    let victim = cluster.agent_ids()[1];
    cluster.kill_agent(victim);
    cluster
        .wait_run(handle)
        .expect("run must complete despite the crash");

    // Recovery restored the checkpoint and replayed only the records
    // past its watermark — not the whole stream.
    let rec = cluster.recovery_stats();
    assert_eq!(rec.recoveries, 1);
    assert_eq!(rec.ckpt_restores, 1);
    assert_eq!(rec.ckpt_fallbacks, 0);
    assert_eq!(rec.replayed_records, second.len() as u64);
    assert!(rec.recovery_nanos > 0 && rec.ckpt_restore_nanos > 0);
    // The victim's counters died with it; the three survivors' shard
    // writes remain visible in the aggregate.
    let m = cluster.metrics();
    assert!(m.ckpt_writes >= 3, "surviving agents wrote shards");
    assert!(m.ckpt_bytes > 0);
    assert_eq!(m.ckpt_restores, 1);
    assert_eq!(m.replayed_records, second.len() as u64);

    let truth = reference::wcc(edges.iter().copied());
    for &(u, _) in &edges {
        assert_eq!(cluster.query_u64(u), Some(truth[&u]), "wcc v{u}");
    }
    cluster.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Shared body for the torn-generation fallback tests: commit two
/// generations, tear every shard of the newest (exactly what a crash
/// mid-checkpoint-write leaves behind), crash an agent mid-run, and
/// require recovery to fall back one generation, replay the longer
/// suffix, and land bit-exact on an undisturbed run's states.
fn torn_generation_falls_back(mode: ExecutionMode, tag: &str) {
    let dir = ckpt_dir(tag);
    let edges = chain_graph(600);
    let third = edges.len() / 3;
    let (a, rest) = edges.split_at(third);
    let (b, c) = rest.split_at(third);
    let opts = RunOptions {
        reuse_state: false,
        mode,
    };

    let mut cluster = Cluster::builder()
        .agents(4)
        .config(recovery_config())
        .checkpoints(&dir)
        .build();
    cluster.ingest_edges(a.iter().copied());
    assert!(cluster.checkpoint().expect("gen 1").committed);
    cluster.ingest_edges(b.iter().copied());
    assert!(cluster.checkpoint().expect("gen 2").committed);
    cluster.ingest_edges(c.iter().copied());

    // Generation 2 committed, then its shards were damaged on disk.
    tear_generation(&dir, 2);

    let handle = cluster.start_run(Wcc::new(), opts).expect("start run");
    let victim = cluster.agent_ids()[1];
    cluster.kill_agent(victim);
    cluster
        .wait_run(handle)
        .expect("run must complete despite crash and torn checkpoint");

    // The newest generation failed validation, so recovery fell back a
    // generation and replayed the longer suffix (batches b and c).
    let rec = cluster.recovery_stats();
    assert_eq!(rec.ckpt_restores, 1);
    assert_eq!(rec.ckpt_fallbacks, 1);
    assert_eq!(rec.replayed_records, (b.len() + c.len()) as u64);

    // Bit-exact against an undisturbed cluster running the same graph.
    let mut clean = Cluster::builder()
        .agents(4)
        .config(recovery_config())
        .build();
    clean.ingest_edges(edges.iter().copied());
    clean.run_with(Wcc::new(), opts).expect("clean run");
    let got = cluster.dump_states();
    let want = clean.dump_states();
    assert_eq!(got, want, "recovered states must be bit-exact");

    let truth = reference::wcc(edges.iter().copied());
    for &(u, _) in &edges {
        assert_eq!(cluster.query_u64(u), Some(truth[&u]), "wcc v{u}");
    }
    cluster.shutdown();
    clean.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_generation_falls_back_sync() {
    torn_generation_falls_back(ExecutionMode::Sync, "fallback-sync");
}

#[test]
fn torn_generation_falls_back_async() {
    torn_generation_falls_back(ExecutionMode::Async, "fallback-async");
}

#[test]
fn injected_torn_writes_refuse_to_commit_and_recovery_survives() {
    // Every agent-side shard write is torn (probability 1.0): the
    // driver's read-back scrub must refuse the manifest, leave the
    // change log whole, and recovery must degrade to full replay.
    let dir = ckpt_dir("refuse");
    let edges = chain_graph(300);
    let mut cluster = Cluster::builder()
        .agents(4)
        .config(recovery_config())
        .checkpoints(&dir)
        .disk_chaos(DiskFault::new(1.0, 0.0), 0xD15C)
        .build();
    cluster.ingest_edges(edges.iter().copied());

    let rep = cluster
        .checkpoint()
        .expect("checkpoint call itself succeeds");
    assert!(!rep.committed, "torn shards must never commit");
    let (retained, _, base, ingested) = cluster.change_log_stats();
    assert_eq!(
        (retained, base),
        (ingested, 0),
        "a refused commit must not truncate the log"
    );

    let handle = cluster
        .start_run(Wcc::new(), RunOptions::default())
        .expect("start run");
    let victim = cluster.agent_ids()[1];
    cluster.kill_agent(victim);
    cluster
        .wait_run(handle)
        .expect("full replay still recovers");

    let rec = cluster.recovery_stats();
    assert_eq!(rec.ckpt_restores, 0, "no valid generation to restore");
    assert_eq!(rec.replayed_records, edges.len() as u64, "full replay");

    let truth = reference::wcc(edges.iter().copied());
    for &(u, _) in &edges {
        assert_eq!(cluster.query_u64(u), Some(truth[&u]), "wcc v{u}");
    }
    cluster.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn all_generations_damaged_with_truncated_log_fails_fast() {
    // Two committed generations, log truncated past the stream origin,
    // then every shard of both generations is damaged: no combination
    // of checkpoint + log covers the stream, so recovery must fail
    // fast with RecoveryUnavailable — not silently produce a partial
    // graph and not burn the run deadline.
    let dir = ckpt_dir("unavailable");
    let edges = chain_graph(300);
    let (first, second) = edges.split_at(edges.len() / 2);
    let mut cluster = Cluster::builder()
        .agents(4)
        .config(recovery_config())
        .checkpoints(&dir)
        .build();
    cluster.ingest_edges(first.iter().copied());
    assert!(cluster.checkpoint().expect("gen 1").committed);
    cluster.ingest_edges(second.iter().copied());
    assert!(cluster.checkpoint().expect("gen 2").committed);
    let (_, _, base, _) = cluster.change_log_stats();
    assert!(base > 0, "log must be truncated for this scenario");
    tear_generation(&dir, 1);
    tear_generation(&dir, 2);

    let handle = cluster
        .start_run(Wcc::new(), RunOptions::default())
        .expect("start run");
    let victim = cluster.agent_ids()[1];
    cluster.kill_agent(victim);
    let err = cluster.wait_run(handle).expect_err("recovery must fail");
    assert!(
        matches!(err, NetError::RecoveryUnavailable(_)),
        "expected RecoveryUnavailable, got {err:?}"
    );
    cluster.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn crash_without_log_or_checkpoint_fails_fast_not_timeout() {
    // retain_change_log = false and no checkpoint directory: an agent
    // crash is unrecoverable by construction. The driver must say so
    // immediately — the seed behavior was a quiesce-deadline timeout
    // that looked like a hang and hid the misconfiguration.
    let cfg = SystemConfig {
        retain_change_log: false,
        ..recovery_config()
    };
    let run_deadline = cfg.run_deadline;
    let mut cluster = Cluster::builder().agents(4).config(cfg).build();
    cluster.ingest_edges(chain_graph(300).iter().copied());

    let started = std::time::Instant::now();
    let handle = cluster
        .start_run(Wcc::new(), RunOptions::default())
        .expect("start run");
    let victim = cluster.agent_ids()[1];
    cluster.kill_agent(victim);
    let err = cluster.wait_run(handle).expect_err("recovery must fail");
    assert!(
        matches!(err, NetError::RecoveryUnavailable(_)),
        "expected RecoveryUnavailable, got {err:?}"
    );
    assert!(
        started.elapsed() < run_deadline / 2,
        "must fail fast, not ride out a deadline"
    );
    cluster.shutdown();
}

#[test]
fn interval_checkpoints_fire_automatically() {
    // checkpoint_interval_batches = 1: every quiesced ingest ends in
    // an automatic checkpoint, so the log stays bounded without any
    // explicit checkpoint() calls.
    let dir = ckpt_dir("auto");
    let mut cluster = Cluster::builder()
        .agents(3)
        .checkpoints(&dir)
        .checkpoint_every(1)
        .build();
    let edges = chain_graph(120);
    let (first, second) = edges.split_at(edges.len() / 2);
    cluster.ingest_edges(first.iter().copied());
    cluster.ingest_edges(second.iter().copied());

    let (retained, _, base, ingested) = cluster.change_log_stats();
    assert_eq!(ingested, edges.len() as u64);
    assert!(
        retained < ingested,
        "automatic checkpoints must truncate the log"
    );
    assert_eq!(
        base,
        first.len() as u64,
        "keep=2 retains the older watermark"
    );
    assert!(
        cluster.metrics().ckpt_writes >= 6,
        "two generations × three agents"
    );
    cluster.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn parked_residuals_survive_checkpoint_and_recovery() {
    // Incremental PageRank parks batch corrections as per-vertex
    // residuals between runs. A checkpoint taken at that boundary must
    // carry them: after a crash + restore, the incremental run folds
    // the restored residuals and still lands on the full-recompute
    // answer. This test checkpoints after the batch (empty replay
    // suffix) so the *parked* residuals alone carry the correction;
    // `replayed_suffix_regenerates_residual_corrections` covers the
    // complementary suffix-replay path.
    let dir = ckpt_dir("residual");
    let edges = chain_graph(400);
    let batch: Vec<EdgeChange> = (0..400u64)
        .step_by(9)
        .filter(|&i| (i * 11 + 5) % 400 != i)
        .map(|i| EdgeChange::insert(i, (i * 11 + 5) % 400))
        .collect();
    let pr = PageRank::new(0.85)
        .with_max_iters(300)
        .with_tolerance(1e-10);

    let mut cluster = Cluster::builder()
        .agents(4)
        .config(recovery_config())
        .checkpoints(&dir)
        .build();
    cluster.ingest_edges(edges.iter().copied());
    cluster.run(pr).expect("initial pagerank");
    // The batch converts to residual corrections at ingest; checkpoint
    // with those residuals parked and nothing left in the log.
    cluster.ingest(batch.iter().copied());
    assert!(cluster.checkpoint().expect("checkpoint").committed);

    let handle = cluster
        .start_run(
            pr,
            RunOptions {
                reuse_state: true,
                mode: ExecutionMode::Sync,
            },
        )
        .expect("start incremental run");
    let victim = cluster.agent_ids()[1];
    cluster.kill_agent(victim);
    cluster
        .wait_run(handle)
        .expect("incremental run survives the crash");
    let rec = cluster.recovery_stats();
    assert_eq!(rec.recoveries, 1);
    assert_eq!(rec.ckpt_restores, 1);
    assert_eq!(rec.replayed_records, 0, "checkpoint covered the batch");
    let got = cluster.dump_states();
    cluster.shutdown();

    // Full recompute over the final graph: the incremental answer is
    // only reachable if the restored residuals carried the batch.
    let mut full: Vec<(u64, u64)> = edges;
    full.extend(batch.iter().map(|c| (c.edge.src, c.edge.dst)));
    full.sort_unstable();
    full.dedup();
    let mut clean = Cluster::builder().agents(4).build();
    clean.ingest_edges(full.iter().copied());
    clean.run(pr).expect("full recompute");
    let want = clean.dump_states();
    clean.shutdown();

    assert_eq!(got.len(), want.len());
    for (v, &bits) in &want {
        let w = f64::from_bits(bits);
        let g = f64::from_bits(got[v]);
        assert!(
            (w - g).abs() < 1e-5,
            "residuals lost in recovery: v{v} full={w} incremental={g}"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn replayed_suffix_regenerates_residual_corrections() {
    // The complement of `parked_residuals_survive_checkpoint_and
    // _recovery`: here the checkpoint is cut *before* the batch, so
    // after the crash the batch lives only in the change-log suffix.
    // The seed behavior dropped it silently — recovery replayed the
    // suffix with no residual seed armed, so the replayed changes
    // re-dirtied vertices without the mass behind them and the
    // incremental run converged to a wrong answer. The driver now
    // re-arms every agent's delta seed before the replay and
    // re-anchors the lead's dangling book from the manifest, so the
    // replayed suffix regenerates its corrections exactly as live
    // ingest would have. Sink vertices make the dangling book
    // load-bearing too.
    let dir = ckpt_dir("suffix-residual");
    let mut edges = chain_graph(400);
    // Sinks: vertices with inbound edges and no outbound ones, whose
    // leaked mass the dangling redistribution must account for.
    for i in (0..400u64).step_by(7) {
        edges.push((i, 1000 + i));
    }
    // The batch both adds fresh sinks and converts existing ones into
    // non-sinks, moving dangling mass in both directions.
    let batch: Vec<EdgeChange> = (0..400u64)
        .step_by(9)
        .flat_map(|i| {
            [
                EdgeChange::insert(i, (i * 11 + 5) % 400),
                EdgeChange::insert(1000 + ((i / 9) * 7 % 400), i),
                EdgeChange::insert((i * 13 + 1) % 400, 2000 + i),
            ]
        })
        .filter(|c| c.edge.src != c.edge.dst)
        .collect();
    let pr = PageRank::new(0.85)
        .with_max_iters(300)
        .with_tolerance(1e-10);

    let mut cluster = Cluster::builder()
        .agents(4)
        .config(recovery_config())
        .checkpoints(&dir)
        .build();
    cluster.ingest_edges(edges.iter().copied());
    cluster.run(pr).expect("initial pagerank");
    // Cut the generation BEFORE the batch: the batch becomes the
    // replayed suffix after the crash.
    assert!(cluster.checkpoint().expect("checkpoint").committed);
    cluster.ingest(batch.iter().copied());

    let handle = cluster
        .start_run(
            pr,
            RunOptions {
                reuse_state: true,
                mode: ExecutionMode::Sync,
            },
        )
        .expect("start incremental run");
    let victim = cluster.agent_ids()[1];
    cluster.kill_agent(victim);
    cluster
        .wait_run(handle)
        .expect("incremental run survives the crash");
    let rec = cluster.recovery_stats();
    assert_eq!(rec.recoveries, 1);
    assert_eq!(rec.ckpt_restores, 1);
    assert_eq!(
        rec.replayed_records,
        batch.len() as u64,
        "the batch must be replayed from the log, not the checkpoint"
    );
    let got = cluster.dump_states();
    cluster.shutdown();

    // Full recompute over the final graph: reachable only if the
    // replayed suffix regenerated its residual corrections.
    let mut full: Vec<(u64, u64)> = edges;
    full.extend(batch.iter().map(|c| (c.edge.src, c.edge.dst)));
    full.sort_unstable();
    full.dedup();
    let mut clean = Cluster::builder().agents(4).build();
    clean.ingest_edges(full.iter().copied());
    clean.run(pr).expect("full recompute");
    let want = clean.dump_states();
    clean.shutdown();

    assert_eq!(got.len(), want.len());
    for (v, &bits) in &want {
        let w = f64::from_bits(bits);
        let g = f64::from_bits(got[v]);
        assert!(
            (w - g).abs() < 1e-5,
            "suffix corrections lost in recovery: v{v} full={w} incremental={g}"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}
