//! The continuous-query serving plane: batched point reads agree with
//! the proxy's one-vertex loop, standing subscriptions agree with
//! polling, snapshot reads are never torn (across live runs, elastic
//! view changes, and crash recovery), and authoritative negative
//! answers take the fast path — no view refresh burned on a vertex
//! that simply does not exist.

use elga::core::client::ClientProxy;
use elga::core::msg::packet;
use elga::core::program::RunOptions;
use elga::prelude::*;
use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

/// Deterministic ring-with-chords graph (shared shape with the
/// checkpoint suite): connected, skewed enough to exercise routing.
fn chain_graph(n: u64) -> Vec<(u64, u64)> {
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n));
        if i % 3 == 0 {
            edges.push((i, (i * 7 + 3) % n));
        }
    }
    edges.retain(|&(u, v)| u != v);
    edges.sort_unstable();
    edges.dedup();
    edges
}

fn ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("elga-query-it-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn recovery_config() -> SystemConfig {
    SystemConfig {
        heartbeat_interval: Duration::from_millis(25),
        heartbeat_misses: 40,
        quiesce_deadline: Duration::from_secs(30),
        run_deadline: Duration::from_secs(60),
        ..SystemConfig::default()
    }
}

fn query_client(cluster: &Cluster) -> QueryClient {
    QueryClient::connect(
        cluster.transport(),
        cluster.config().clone(),
        cluster.lead_directory(),
    )
    .expect("query client connects")
}

fn client_proxy(cluster: &Cluster) -> ClientProxy {
    ClientProxy::connect(
        cluster.transport(),
        cluster.config().clone(),
        cluster.lead_directory(),
    )
    .expect("client proxy connects")
}

/// A batch over present and absent vertices answers exactly like the
/// proxy's per-vertex `query_primary` loop: same hits, same misses,
/// same encoded states — and every hit carries the completed run's tag.
#[test]
fn batched_reads_match_primary_loop() {
    let n = 300u64;
    let mut cluster = Cluster::builder().agents(4).build();
    cluster.ingest_edges(chain_graph(n).iter().copied());
    let stats = cluster
        .run(PageRank::new(0.85).with_max_iters(30))
        .expect("pagerank");

    let client = query_client(&cluster);
    let proxy = client_proxy(&cluster);

    // 0..n exist; n..n+40 were never created.
    let asked: Vec<u64> = (0..n + 40).collect();
    let batched = client.query_batch(&asked);
    assert_eq!(batched.len(), asked.len());

    for (&v, got) in asked.iter().zip(&batched) {
        let want = proxy.query_primary(v);
        match (got, want) {
            (Some(b), Some(p)) => {
                assert_eq!(b.state, p.state, "v{v}: batch disagrees with proxy");
                assert_eq!(b.run, stats.run_id, "v{v}: hit tagged a foreign run");
                assert_eq!(b.run, p.run, "v{v}: batch and proxy run tags differ");
            }
            (None, None) => assert!(v >= n, "v{v} exists but both paths missed it"),
            (b, p) => panic!("v{v}: batch={b:?} proxy={p:?} disagree on existence"),
        }
    }
    // One snapshot per sweep: every hit shares one (run, watermark).
    let tags: Vec<(u64, u64)> = batched
        .iter()
        .flatten()
        .map(|s| (s.run, s.watermark))
        .collect();
    assert!(
        tags.windows(2).all(|w| w[0] == w[1]),
        "tags differ within a sweep: {tags:?}"
    );

    let m = cluster.metrics();
    assert!(
        m.query_batches >= 4,
        "expected one QUERY_BATCH per agent, got {}",
        m.query_batches
    );
    assert!(
        m.queries >= asked.len() as u64,
        "batch vertices not counted as queries"
    );
    cluster.shutdown();
}

/// An authoritative "vertex not found" from the primary ends the search
/// immediately: no replica walk escalation, no view refresh round trip.
#[test]
fn negative_answer_is_authoritative_and_cheap() {
    let mut cluster = Cluster::builder().agents(3).build();
    cluster.ingest_edges(chain_graph(120).iter().copied());
    cluster.run(Degree::new()).expect("degree");

    let client = query_client(&cluster);
    let mut proxy = client_proxy(&cluster);
    assert!(proxy.query(7).is_some(), "existing vertex must resolve");

    let stats = cluster
        .transport()
        .net_stats()
        .expect("inproc transport tracks stats");
    let views_before = stats.sent(packet::GET_VIEW).0;
    for absent in [999_983u64, 424_242, 777_216] {
        assert!(proxy.query(absent).is_none(), "v{absent} should not exist");
        assert_eq!(client.query_batch(&[absent]), vec![None]);
    }
    let views_after = stats.sent(packet::GET_VIEW).0;
    assert_eq!(
        views_before, views_after,
        "authoritative miss must not burn a view refresh"
    );
    cluster.shutdown();
}

/// Push equals poll: the first completed run pushes every watched
/// vertex, later runs push only changed values, and folding the pushes
/// together reproduces exactly what a fresh batched read returns.
#[test]
fn subscriptions_match_polled_batches() {
    let n = 200u64;
    let mut cluster = Cluster::builder().agents(3).build();
    cluster.ingest_edges(chain_graph(n).iter().copied());

    let mut client = query_client(&cluster);
    let mut watched: Vec<u64> = (0..n).step_by(5).collect();
    watched.push(900_000); // never exists; must never be pushed
    let sub = client.subscribe(&watched).expect("subscribe");

    let r1 = cluster
        .run(PageRank::new(0.85).with_max_iters(40))
        .expect("first run");
    cluster.quiesce().expect("quiesce flushes sub pushes");
    let mut merged = client.latest_for(sub, Duration::from_secs(5));
    let polled = client.query_batch(&watched);
    for (&v, p) in watched.iter().zip(&polled) {
        match p {
            Some(snap) => {
                let pushed = merged
                    .get(&v)
                    .unwrap_or_else(|| panic!("v{v}: first run must push every watched vertex"));
                assert_eq!(pushed, snap, "v{v}: push disagrees with poll");
                assert_eq!(pushed.run, r1.run_id);
            }
            None => assert!(!merged.contains_key(&v), "v{v}: pushed but unreadable"),
        }
    }

    // Perturb the graph; the next run pushes only what moved.
    cluster.ingest_edges((0..40u64).map(|i| (i * 3 % n, (i * 17 + 2) % n)));
    let r2 = cluster
        .run(PageRank::new(0.85).with_max_iters(40))
        .expect("second run");
    cluster.quiesce().expect("quiesce flushes sub pushes");
    let second = client.latest_for(sub, Duration::from_secs(5));
    assert!(!second.is_empty(), "perturbed run pushed nothing");
    for (v, snap) in second {
        assert_eq!(snap.run, r2.run_id, "v{v}: stale push run tag");
        merged.insert(v, snap);
    }
    let polled = client.query_batch(&watched);
    for (&v, p) in watched.iter().zip(&polled) {
        match p {
            Some(snap) => assert_eq!(
                merged.get(&v),
                Some(snap),
                "v{v}: folded pushes diverge from a fresh read"
            ),
            None => assert!(!merged.contains_key(&v)),
        }
    }

    let m = cluster.metrics();
    assert!(m.subscriptions >= 1, "subscription not registered");
    assert!(
        m.sub_pushes as usize >= watched.len() - 1,
        "first run must push all watched"
    );

    // Cancelled subscriptions stay silent.
    client.unsubscribe(sub).expect("unsubscribe");
    cluster
        .run(PageRank::new(0.85).with_max_iters(5))
        .expect("third run");
    cluster.quiesce().expect("quiesce");
    assert!(
        client.poll_updates(Duration::from_millis(200)).is_empty(),
        "cancelled subscription still receives pushes"
    );
    cluster.shutdown();
}

/// Readers racing a live run never observe torn mid-superstep state:
/// every answer is exactly the previous completed run's value (tagged
/// with that run) or exactly the new run's value (tagged with it) —
/// never an intermediate power-iteration value.
#[test]
fn snapshots_never_torn_during_live_run() {
    let n = 400u64;
    let mut cluster = Cluster::builder().agents(4).build();
    cluster.ingest_edges(chain_graph(n).iter().copied());
    let pr = PageRank::new(0.85)
        .with_max_iters(200)
        .with_tolerance(1e-12);

    let r1 = cluster.run(pr).expect("first run");
    let client = query_client(&cluster);
    let asked: Vec<u64> = (0..n).collect();
    let s1: Vec<Option<SnapshotValue>> = client.query_batch(&asked);
    assert!(s1.iter().all(|s| s.is_some_and(|s| s.run == r1.run_id)));

    // Change the graph so run 2 converges to genuinely different
    // values, then hammer reads while it executes.
    cluster.ingest_edges((0..n).step_by(4).map(|i| (i, (i * 29 + 11) % n)));
    let handle = cluster
        .start_run(pr, RunOptions::default())
        .expect("start second run");
    let mut observed: Vec<Vec<Option<SnapshotValue>>> = Vec::new();
    for _ in 0..20 {
        observed.push(client.query_batch(&asked));
    }
    let r2 = cluster.wait_run(handle).expect("second run");
    let s2 = client.query_batch(&asked);
    assert!(s2.iter().all(|s| s.is_some_and(|s| s.run == r2.run_id)));

    let mut saw = HashMap::new();
    for sweep in &observed {
        for ((&v, got), (old, new)) in asked.iter().zip(sweep).zip(s1.iter().zip(&s2)) {
            let Some(got) = got else { continue };
            *saw.entry(got.run).or_insert(0u64) += 1;
            if got.run == r1.run_id {
                assert_eq!(Some(*got), *old, "v{v}: torn read under run-1 tag");
            } else if got.run == r2.run_id {
                assert_eq!(Some(*got), *new, "v{v}: torn read under run-2 tag");
            } else {
                panic!("v{v}: answer tagged unknown run {}", got.run);
            }
        }
    }
    assert!(!saw.is_empty(), "no answers observed around the live run");
    cluster.shutdown();
}

/// Snapshot answers survive the control plane's hard events: agents
/// joining (snapshots migrate with primaryship), agents leaving, and a
/// crash recovered from a checkpoint — values always equal one
/// completed run's states, never a mixture.
#[test]
fn snapshots_survive_elasticity_and_recovery() {
    let dir = ckpt_dir("elastic");
    let n = 240u64;
    let mut cluster = Cluster::builder()
        .agents(3)
        .config(recovery_config())
        .checkpoints(&dir)
        .build();
    cluster.ingest_edges(chain_graph(n).iter().copied());
    let pr = PageRank::new(0.85).with_max_iters(60);
    let r1 = cluster.run(pr).expect("first run");

    let mut client = query_client(&cluster);
    let asked: Vec<u64> = (0..n).collect();
    let s1 = client.query_batch(&asked);
    assert!(s1.iter().all(|s| s.is_some_and(|s| s.run == r1.run_id)));

    // Join: primaryship (and the snapshots riding it) migrates.
    let joined = cluster.add_agents(1);
    client.refresh().expect("refresh after join");
    assert_eq!(client.query_batch(&asked), s1, "join tore the snapshot");

    // Leave: the departing agent hands its vertices (and snaps) back.
    cluster.remove_agent(joined[0]);
    client.refresh().expect("refresh after leave");
    assert_eq!(client.query_batch(&asked), s1, "leave tore the snapshot");

    // Crash mid-run: recovery restores the checkpoint, replays the
    // suffix, and restarts the run; once it completes, served answers
    // equal the finished run's states exactly — one tag, no mixture.
    assert!(cluster.checkpoint().expect("checkpoint").committed);
    cluster.ingest_edges((0..30u64).map(|i| (i * 7 % n, (i * 13 + 1) % n)));
    let handle = cluster
        .start_run(pr, RunOptions::default())
        .expect("start post-checkpoint run");
    let victim = cluster.agent_ids()[1];
    cluster.kill_agent(victim);
    cluster.wait_run(handle).expect("run survives the crash");
    assert_eq!(cluster.metrics().recoveries, 1);

    client.refresh().expect("refresh after recovery");
    let served = client.query_batch(&asked);
    let truth = cluster.dump_states();
    let tags: Vec<(u64, u64)> = served
        .iter()
        .flatten()
        .map(|s| (s.run, s.watermark))
        .collect();
    assert_eq!(tags.len(), asked.len(), "vertices lost across recovery");
    assert!(
        tags.windows(2).all(|w| w[0] == w[1]),
        "mixed tags after recovery: {tags:?}"
    );
    for (&v, s) in asked.iter().zip(&served) {
        assert_eq!(
            s.unwrap().state,
            truth[&v],
            "v{v}: served answer diverges from state"
        );
    }
    cluster.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
