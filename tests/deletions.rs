//! Delete-heavy ingest: turnstile streams remove edges as often as
//! they add them (§2.3), and a high-degree vertex must not make each
//! removal cost a scan of its adjacency list. Agents keep an `(u, v) →
//! position` index, so deletion is a swap-remove plus one index fix-up
//! — this test drives tens of thousands of deletions through a single
//! hub and checks both the surviving graph and analysis results on it.

use elga::graph::reference;
use elga::prelude::*;
use std::collections::HashSet;
use std::time::Instant;

const HUB: u64 = 0;
const SPOKES: u64 = 20_000;

#[test]
fn hub_deletion_storm_leaves_a_consistent_graph() {
    let mut cluster = Cluster::builder().agents(2).build();

    // A hub with 20k out-edges plus a ring so the graph stays connected
    // for the survivors.
    let mut inserts: Vec<EdgeChange> = (1..=SPOKES).map(|s| EdgeChange::insert(HUB, s)).collect();
    for s in 1..SPOKES {
        inserts.push(EdgeChange::insert(s, s + 1));
    }
    cluster.ingest(inserts.iter().copied());

    // Interleaved churn: delete every even spoke, re-insert every
    // fourth, delete a band of ring edges — each delete hits the hub's
    // (or a ring vertex's) position index, never a linear scan.
    let mut churn: Vec<EdgeChange> = Vec::new();
    for s in (2..=SPOKES).step_by(2) {
        churn.push(EdgeChange::delete(HUB, s));
        if s % 4 == 0 {
            churn.push(EdgeChange::insert(HUB, s));
        }
    }
    for s in 5_000..6_000u64 {
        churn.push(EdgeChange::delete(s, s + 1));
    }
    // Deleting a never-inserted edge must be a no-op.
    churn.push(EdgeChange::delete(HUB, SPOKES + 77));
    let started = Instant::now();
    cluster.ingest(churn.iter().copied());
    let churn_time = started.elapsed();
    // O(deg) removal would put ~10k scans over a ~20k-entry list on
    // this path (tens of seconds in debug builds); the indexed path is
    // well under this generous bound.
    assert!(
        churn_time.as_secs() < 60,
        "deletion storm took {churn_time:?} — deletes are not O(1)"
    );

    // Surviving edge set, mirrored by the cluster's edge gauge.
    let mut edges: HashSet<(u64, u64)> = HashSet::new();
    for c in inserts.iter().chain(churn.iter()) {
        let pair = (c.edge.src, c.edge.dst);
        if c.is_insert() {
            edges.insert(pair);
        } else {
            edges.remove(&pair);
        }
    }
    cluster.quiesce().expect("quiesce");
    assert_eq!(
        cluster.metrics().edges,
        edges.len() as u64,
        "agents hold exactly the surviving out-placements"
    );

    // WCC over the survivors matches the single-threaded reference —
    // adjacency lists and degree metadata survived the churn intact.
    cluster.run(Wcc::new()).expect("wcc");
    let truth = reference::wcc(edges.iter().copied());
    let got = cluster.dump_states();
    assert_eq!(got.len(), truth.len(), "vertex set after churn");
    for (v, &label) in &truth {
        assert_eq!(got.get(v), Some(&label), "wcc v{v}");
    }
    cluster.shutdown();
}
