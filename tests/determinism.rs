//! Worker-count determinism: the parallel superstep kernels partition
//! fixed vertex shards and merge per-shard output in shard index
//! order, so the bytes each agent emits — and therefore the results —
//! must not depend on how many worker threads ran them.
//!
//! What "bit-identical" can promise depends on the algorithm:
//!
//! * WCC combines with `min`, which is order- and duplicate-
//!   insensitive, so converged labels are bit-exact across worker
//!   counts in *every* deployment — multi-agent, over TCP, and under
//!   a fault-injecting transport.
//! * PageRank combines with f64 addition, which is order-sensitive.
//!   Within one agent the kernels keep the order fixed, and with a
//!   single agent the FIFO transport keeps arrival order fixed too, so
//!   single-agent PageRank is bit-exact. Across multiple agents the
//!   arrival *interleave* of senders is scheduling-dependent (equally
//!   so before the parallel kernels), so there the test pins the usual
//!   1e-9 agreement.
//!
//! The same contract covers the comms plane's coalescing ablation:
//! coalescing packs the identical record stream into different frame
//! boundaries, never a different per-destination order, so every
//! bit-exactness promise above must hold with coalescing on or off —
//! in-process, over TCP, and under chaos.

use elga::core::agent::Agent;
use elga::core::directory::{self, DirectoryRole};
use elga::core::msg::{self, packet, DirectoryView, RunInfo};
use elga::core::program::{ProgramSpec, RunOptions};
use elga::core::streamer::Streamer;
use elga::net::{Addr, FaultPlan, Frame, SendPolicy, TcpTransport, Transport};
use elga::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Ring with multiplicative chords: connected, degree-skewed, and
/// large enough that every agent's store crosses the kernels' serial
/// fast-path threshold (1024 vertices) so multi-worker runs really do
/// run multi-worker.
fn big_graph(n: u64) -> Vec<(u64, u64)> {
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n));
        if i % 3 == 0 {
            edges.push((i, (i * 7 + 3) % n));
        }
        if i % 97 == 0 {
            // Mild hubs to vary degree estimates.
            edges.push((i, (i * 31 + 11) % n));
            edges.push(((i * 13 + 5) % n, i));
        }
    }
    edges.retain(|&(u, v)| u != v);
    edges.sort_unstable();
    edges.dedup();
    edges
}

fn states_for(
    workers: usize,
    agents: usize,
    coalescing: bool,
    edges: &[(u64, u64)],
    spec: impl Into<ProgramSpec>,
) -> HashMap<u64, u64> {
    let mut cluster = Cluster::builder()
        .agents(agents)
        .workers(workers)
        .coalescing(coalescing)
        .build();
    cluster.ingest_edges(edges.iter().copied());
    cluster.run(spec).expect("run");
    let states = cluster.dump_states();
    cluster.shutdown();
    states
}

#[test]
fn wcc_bit_identical_across_worker_counts() {
    let edges = big_graph(6000);
    let w1 = states_for(1, 2, true, &edges, Wcc::new());
    let w4 = states_for(4, 2, true, &edges, Wcc::new());
    assert_eq!(w1.len(), 6000);
    assert_eq!(w1, w4, "WCC labels must not depend on worker count");
}

#[test]
fn single_agent_pagerank_bit_identical_across_worker_counts() {
    let edges = big_graph(3000);
    let pr = PageRank::new(0.85).with_max_iters(10);
    let w1 = states_for(1, 1, true, &edges, pr);
    let w4 = states_for(4, 1, true, &edges, pr);
    assert_eq!(w1.len(), 3000);
    assert_eq!(
        w1, w4,
        "single-agent PageRank must be bit-exact across worker counts"
    );
}

#[test]
fn multi_agent_pagerank_agrees_across_worker_counts() {
    let edges = big_graph(6000);
    let pr = PageRank::new(0.85).with_max_iters(10);
    let w1 = states_for(1, 2, true, &edges, pr);
    let w4 = states_for(4, 2, true, &edges, pr);
    assert_eq!(w1.len(), w4.len());
    for (v, &bits) in &w1 {
        let a = f64::from_bits(bits);
        let b = f64::from_bits(w4[v]);
        assert!((a - b).abs() < 1e-9, "v{v}: {a} vs {b}");
    }
}

#[test]
fn results_bit_identical_with_coalescing_off() {
    // Coalescing only repacks frame boundaries, so it composes with
    // every other determinism axis: coalescing-on + 4 workers must
    // match coalescing-off + 1 worker bit for bit.
    let edges = big_graph(6000);
    let on = states_for(4, 2, true, &edges, Wcc::new());
    let off = states_for(1, 2, false, &edges, Wcc::new());
    assert_eq!(on.len(), 6000);
    assert_eq!(on, off, "WCC must be bit-exact across coalescing modes");

    let edges = big_graph(3000);
    let pr = PageRank::new(0.85).with_max_iters(10);
    let on = states_for(4, 1, true, &edges, pr);
    let off = states_for(1, 1, false, &edges, pr);
    assert_eq!(
        on, off,
        "single-agent PageRank must be bit-exact across coalescing modes"
    );
}

#[test]
fn wcc_bit_identical_under_chaos_with_workers() {
    let edges = big_graph(6000);
    let cfg = SystemConfig {
        request_timeout: Duration::from_secs(5),
        send_policy: SendPolicy {
            retries: 6,
            base_delay: Duration::from_millis(2),
            deadline: Duration::from_secs(10),
        },
        quiesce_deadline: Duration::from_secs(60),
        run_deadline: Duration::from_secs(120),
        ..SystemConfig::default()
    };
    let plan = FaultPlan::uniform(0.05, 0.01, Duration::ZERO, Duration::from_millis(5));
    let mut chaos = Cluster::builder()
        .agents(4)
        .config(cfg.clone())
        .workers(4)
        .chaos(plan, 0xE16A)
        .build();
    let mut clean = Cluster::builder().agents(4).config(cfg).workers(1).build();
    chaos.ingest_edges(edges.iter().copied());
    clean.ingest_edges(edges.iter().copied());
    chaos.run(Wcc::new()).expect("chaos wcc");
    clean.run(Wcc::new()).expect("clean wcc");
    let got = chaos.dump_states();
    let want = clean.dump_states();
    assert_eq!(got, want, "chaos + 4 workers must match clean + 1 worker");
    let stats = chaos.fault().expect("chaos handle").stats();
    assert!(stats.dropped() > 0, "no frames dropped — chaos was a no-op");
    chaos.shutdown();
    clean.shutdown();
}

#[test]
fn wcc_bit_identical_under_chaos_with_coalescing() {
    // Retries may duplicate or reorder whole frames; coalesced frames
    // carry more records each, so this is the sharpest test that frame
    // boundaries never leak into results. The chaotic coalescing-on
    // cluster must match a clean coalescing-off one.
    let edges = big_graph(6000);
    let cfg = SystemConfig {
        request_timeout: Duration::from_secs(5),
        send_policy: SendPolicy {
            retries: 6,
            base_delay: Duration::from_millis(2),
            deadline: Duration::from_secs(10),
        },
        quiesce_deadline: Duration::from_secs(60),
        run_deadline: Duration::from_secs(120),
        ..SystemConfig::default()
    };
    let plan = FaultPlan::uniform(0.05, 0.01, Duration::ZERO, Duration::from_millis(5));
    let mut chaos = Cluster::builder()
        .agents(4)
        .config(cfg.clone())
        .workers(4)
        .coalescing(true)
        .chaos(plan, 0xC0A1)
        .build();
    let mut clean = Cluster::builder()
        .agents(4)
        .config(cfg)
        .workers(1)
        .coalescing(false)
        .build();
    chaos.ingest_edges(edges.iter().copied());
    clean.ingest_edges(edges.iter().copied());
    chaos.run(Wcc::new()).expect("chaos wcc");
    clean.run(Wcc::new()).expect("clean wcc");
    let got = chaos.dump_states();
    let want = clean.dump_states();
    assert_eq!(
        got, want,
        "chaos + coalescing on must match clean + coalescing off"
    );
    let stats = chaos.fault().expect("chaos handle").stats();
    assert!(stats.dropped() > 0, "no frames dropped — chaos was a no-op");
    chaos.shutdown();
    clean.shutdown();
}

// ---------------------------------------------------------------------
// Async vs sync fixpoint equivalence
// ---------------------------------------------------------------------

fn states_for_mode(
    mode: ExecutionMode,
    agents: usize,
    edges: &[(u64, u64)],
    spec: impl Into<ProgramSpec>,
) -> HashMap<u64, u64> {
    let mut cluster = Cluster::builder().agents(agents).build();
    cluster.ingest_edges(edges.iter().copied());
    cluster
        .run_with(
            spec,
            RunOptions {
                reuse_state: false,
                mode,
            },
        )
        .expect("run");
    let states = cluster.dump_states();
    cluster.shutdown();
    states
}

#[test]
fn async_wcc_matches_sync_bit_exact() {
    // WCC's fixpoint (the component-wide minimum) does not depend on
    // message ordering, so the event-driven asynchronous execution must
    // land on exactly the bits the barrier-stepped one does.
    let edges = big_graph(2000);
    let sync = states_for_mode(ExecutionMode::Sync, 3, &edges, Wcc::new());
    let asynch = states_for_mode(ExecutionMode::Async, 3, &edges, Wcc::new());
    assert_eq!(sync.len(), 2000);
    assert_eq!(sync, asynch, "async WCC must match sync bit for bit");
}

#[test]
fn async_pagerank_matches_sync_within_tolerance() {
    // PageRank is not order-independent, but the residual formulation
    // is: every push carries mass that lands exactly once regardless of
    // arrival order, and the run ends only when all residuals sit below
    // tolerance. Sync and async therefore land within an accumulated-
    // tolerance ball (~ n * tol / (1 - d)) of the same fixpoint — far
    // below the 1e-5 asserted here.
    let edges = big_graph(1000);
    let pr = PageRank::new(0.85)
        .with_max_iters(300)
        .with_tolerance(1e-10);
    let sync = states_for_mode(ExecutionMode::Sync, 3, &edges, pr);
    let asynch = states_for_mode(ExecutionMode::Async, 3, &edges, pr);
    assert_eq!(sync.len(), 1000);
    assert_eq!(sync.len(), asynch.len());
    for (v, &bits) in &sync {
        let s = f64::from_bits(bits);
        let a = f64::from_bits(asynch[v]);
        assert!(
            (s - a).abs() < 1e-5,
            "async pagerank diverged at v{v}: sync={s} async={a}"
        );
    }
}

// ---------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------

fn reserve_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("reserve")
        .local_addr()
        .expect("addr")
        .port()
}

/// Single-agent deployment over real TCP sockets with the given worker
/// count; runs PageRank then WCC and returns both state dumps.
fn tcp_states(
    workers: usize,
    coalescing: bool,
    edges: &[(u64, u64)],
) -> (HashMap<u64, u64>, HashMap<u64, u64>) {
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let cfg = SystemConfig {
        workers,
        coalescing,
        ..SystemConfig::default()
    };
    let master = Addr::parse(&format!("tcp://127.0.0.1:{}", reserve_port())).expect("addr");
    let dir0 = Addr::parse(&format!("tcp://127.0.0.1:{}", reserve_port())).expect("addr");
    let bus = Addr::parse(&format!("tcp://127.0.0.1:{}", reserve_port())).expect("addr");
    let _master = directory::spawn_master(transport.clone(), master.clone());
    let _dir = directory::spawn_directory_at(
        transport.clone(),
        cfg.clone(),
        0,
        master.clone(),
        dir0.clone(),
        DirectoryRole::Lead { bus: bus.clone() },
    );
    let agent = Agent::join_at(
        transport.clone(),
        cfg.clone(),
        1,
        Addr::parse("tcp://127.0.0.1:0").expect("addr"),
        dir0.clone(),
        bus.clone(),
    )
    .expect("agent join");
    let agent_handle = agent.spawn();

    let mut streamer =
        Streamer::connect(transport.clone(), cfg.clone(), dir0.clone()).expect("streamer");
    let changes: Vec<EdgeChange> = edges
        .iter()
        .map(|&(u, v)| EdgeChange::insert(u, v))
        .collect();
    streamer.send_batch(&changes).expect("send");
    std::thread::sleep(Duration::from_millis(300));

    let run_to_done = |spec: ProgramSpec| {
        let (tag, params) = spec.encode();
        let sub = transport
            .subscribe(&bus, &[packet::ADVANCE])
            .expect("subscribe");
        let rep = transport
            .request(
                &dir0,
                msg::encode_start(&RunInfo {
                    run_id: 0,
                    tag,
                    params,
                    reuse_state: false,
                    asynchronous: false,
                    delta: false,
                    dangling_base: 0.0,
                }),
                Duration::from_secs(30),
            )
            .expect("start");
        let run_id = rep.reader().u64().expect("run id");
        loop {
            let d = sub.recv_timeout(Duration::from_secs(60)).expect("advance");
            if let Some(adv) = msg::decode_advance(&d.frame) {
                if adv.run == run_id && adv.done {
                    break;
                }
            }
        }
    };
    let dump = |transport: &Arc<dyn Transport>| {
        let rep = transport
            .request(
                &dir0,
                Frame::signal(packet::GET_VIEW),
                Duration::from_secs(5),
            )
            .expect("view");
        let view = DirectoryView::decode(&rep).expect("view");
        let mut out = HashMap::new();
        for a in &view.agents {
            let rep = transport
                .request(
                    &a.addr,
                    Frame::signal(packet::DUMP),
                    Duration::from_secs(30),
                )
                .expect("dump");
            let mut r = rep.reader();
            let n = r.u32().expect("count");
            for _ in 0..n {
                out.insert(r.u64().expect("v"), r.u64().expect("state"));
            }
        }
        out
    };

    run_to_done(PageRank::new(0.85).with_max_iters(10).into());
    let pagerank = dump(&transport);
    run_to_done(Wcc::new().into());
    let wcc = dump(&transport);

    let _ = transport.request(
        &dir0,
        Frame::signal(packet::SHUTDOWN),
        Duration::from_secs(5),
    );
    if let Ok(out) = transport.sender(&master) {
        let _ = out.send(Frame::signal(packet::SHUTDOWN));
    }
    let _ = agent_handle.join();
    (pagerank, wcc)
}

#[test]
fn tcp_results_bit_identical_across_worker_counts() {
    let edges = big_graph(2000);
    let (pr1, wcc1) = tcp_states(1, true, &edges);
    let (pr4, wcc4) = tcp_states(4, true, &edges);
    assert_eq!(pr1.len(), 2000);
    assert_eq!(pr1, pr4, "PageRank over TCP must be bit-exact");
    assert_eq!(wcc1, wcc4, "WCC over TCP must be bit-exact");
}

#[test]
fn tcp_results_bit_identical_with_coalescing_off() {
    let edges = big_graph(2000);
    let (pr_on, wcc_on) = tcp_states(4, true, &edges);
    let (pr_off, wcc_off) = tcp_states(1, false, &edges);
    assert_eq!(pr_on.len(), 2000);
    assert_eq!(
        pr_on, pr_off,
        "PageRank over TCP must be bit-exact across coalescing and worker counts"
    );
    assert_eq!(
        wcc_on, wcc_off,
        "WCC over TCP must be bit-exact across coalescing and worker counts"
    );
}
