//! Incremental (delta) execution vs full recompute.
//!
//! The delta engine must be an *optimization*, never a semantics
//! change. What "must match" means depends on the algorithm:
//!
//! * WCC and SSSP recompute incrementally through monotone
//!   re-activation (reuse + dirty frontier), so an incremental run over
//!   an insertion batch must land on exactly the bits a fresh run over
//!   the final graph produces.
//! * PageRank recomputes through the residual formulation; folds park
//!   below-tolerance residuals, so incremental and full recompute each
//!   sit within a tolerance-bounded ball of the true fixpoint. The
//!   tests pin agreement at a bound far above the accumulated
//!   tolerance but far below any real divergence (a wrong or double
//!   correction shifts ranks by whole shares, orders of magnitude
//!   more).
//!
//! Residual PageRank redistributes dangling mass through the run-level
//! accumulator protocol (sync: per-step scatter reduce; async:
//! cumulative reports telescoped into redistribution rounds), so the
//! graphs here include sink-heavy shapes alongside the ring backbones.

use elga::core::program::RunOptions;
use elga::net::{FaultPlan, SendPolicy};
use elga::prelude::*;
use std::collections::{HashMap, HashSet};
use std::time::Duration;

const TOL: f64 = 1e-10;
/// Agreement bound for tolerance-based PageRank comparisons: comfortably
/// above n * TOL / (1 - d) yet far below one mis-routed share.
const AGREE: f64 = 1e-5;

fn pagerank() -> PageRank {
    PageRank::new(0.85).with_max_iters(300).with_tolerance(TOL)
}

/// Ring with chords: connected, degree-skewed, dangling-free.
fn base_graph(n: u64) -> Vec<(u64, u64)> {
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n));
        if i % 3 == 0 {
            edges.push((i, (i * 7 + 3) % n));
        }
    }
    edges.retain(|&(u, v)| u != v);
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Three change batches over `base_graph(n)`: chord insertions, mixed
/// deletions + insertions, then a batch that grows the vertex set (the
/// teleport term shifts, exercising the step-0 residual reseed).
fn change_batches(n: u64) -> Vec<Vec<EdgeChange>> {
    let mut b1 = Vec::new();
    for i in (0..n).step_by(10) {
        let w = (i * 11 + 5) % n;
        if w != i {
            b1.push(EdgeChange::insert(i, w));
        }
    }
    let mut b2 = Vec::new();
    for i in (0..n).step_by(6) {
        let w = (i * 7 + 3) % n;
        if w != i {
            // These chords exist in the base graph (6 | i implies 3 | i).
            b2.push(EdgeChange::delete(i, w));
        }
    }
    for i in (0..n).step_by(7) {
        let w = (i * 13 + 1) % n;
        if w != i {
            b2.push(EdgeChange::insert(i, w));
        }
    }
    // New vertices n and n+1 splice into the ring shape without
    // breaking dangling-freeness.
    let b3 = vec![
        EdgeChange::insert(n, 0),
        EdgeChange::insert(n - 1, n),
        EdgeChange::insert(n + 1, n / 2),
        EdgeChange::insert(n / 2, n + 1),
    ];
    vec![b1, b2, b3]
}

/// Ring backbone plus hanging sinks: every fifth ring vertex points at
/// a dedicated sink with no out-edges, so a fixed share of the mass is
/// dangling and must be redistributed for the classic and residual
/// fixpoints to coincide.
fn dangling_graph(n: u64) -> Vec<(u64, u64)> {
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n));
        if i % 5 == 0 {
            edges.push((i, n + i / 5));
        }
    }
    edges
}

/// Change batches over `dangling_graph(n)` that move mass in and out
/// of the dangling set: some sinks gain out-edges (stop dangling),
/// some ring vertices lose their chord, and brand-new sinks appear.
fn dangling_batches(n: u64) -> Vec<Vec<EdgeChange>> {
    // Former sinks re-enter the ring: their held mass stops counting
    // as dangling and starts flowing along the new edge.
    let b1: Vec<EdgeChange> = (0..n)
        .step_by(15)
        .map(|i| EdgeChange::insert(n + i / 5, (i + 2) % n))
        .collect();
    // New sinks appear (fresh vertices with in-edges only), and some
    // existing sink chords are deleted outright — the sink vertex
    // vanishes and its mass leaves the dangling set with it.
    let mut b2: Vec<EdgeChange> = (0..n)
        .step_by(9)
        .map(|i| EdgeChange::insert(i, 2 * n + i / 9))
        .collect();
    for i in (0..n).step_by(25) {
        b2.push(EdgeChange::delete(i, n + i / 5));
    }
    vec![b1, b2]
}

/// Apply `batches` to `base`, yielding the final edge set.
fn final_edges(base: &[(u64, u64)], batches: &[Vec<EdgeChange>]) -> Vec<(u64, u64)> {
    let mut set: HashSet<(u64, u64)> = base.iter().copied().collect();
    for batch in batches {
        for c in batch {
            let e = (c.edge.src, c.edge.dst);
            match c.action {
                elga::graph::types::Action::Insert => {
                    set.insert(e);
                }
                elga::graph::types::Action::Delete => {
                    set.remove(&e);
                }
            }
        }
    }
    let mut edges: Vec<_> = set.into_iter().collect();
    edges.sort_unstable();
    edges
}

fn full_recompute(agents: usize, edges: &[(u64, u64)]) -> HashMap<u64, u64> {
    let mut cluster = Cluster::builder().agents(agents).build();
    cluster.ingest_edges(edges.iter().copied());
    cluster.run(pagerank()).expect("full recompute");
    let states = cluster.dump_states();
    cluster.shutdown();
    states
}

fn assert_ranks_agree(got: &HashMap<u64, u64>, want: &HashMap<u64, u64>, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: vertex sets differ");
    for (v, &bits) in want {
        let a = f64::from_bits(bits);
        let b = f64::from_bits(got[v]);
        assert!(
            (a - b).abs() < AGREE,
            "{what}: v{v} diverged: full={a} incremental={b}"
        );
    }
}

#[test]
fn delta_pagerank_matches_full_recompute_across_batches() {
    let n = 800;
    let base = base_graph(n);
    let batches = change_batches(n);

    let mut cluster = Cluster::builder().agents(3).build();
    cluster.ingest_edges(base.iter().copied());
    // Fresh run: classic path (delta needs previous state to exist).
    cluster.run(pagerank()).expect("initial pagerank");
    // Each batch converts to residual corrections at ingest; the
    // reuse_state run folds them through the delta engine.
    for batch in &batches {
        cluster.ingest(batch.iter().copied());
        let stats = cluster
            .run_with(
                pagerank(),
                RunOptions {
                    reuse_state: true,
                    mode: ExecutionMode::Sync,
                },
            )
            .expect("incremental pagerank");
        assert!(stats.steps >= 1);
    }
    let got = cluster.dump_states();
    cluster.shutdown();

    let want = full_recompute(3, &final_edges(&base, &batches));
    assert_ranks_agree(&got, &want, "sync delta across three batches");
}

#[test]
fn async_delta_pagerank_matches_full_recompute() {
    let n = 600;
    let base = base_graph(n);
    let batches = change_batches(n);

    let mut cluster = Cluster::builder().agents(3).build();
    cluster.ingest_edges(base.iter().copied());
    // Async PageRank runs on the delta path from a cold start too:
    // delta_init seeds the teleport residual, no previous run needed.
    for (i, batch) in batches.iter().enumerate() {
        if i > 0 {
            cluster.ingest(batch.iter().copied());
        }
        cluster
            .run_with(
                pagerank(),
                RunOptions {
                    reuse_state: i > 0,
                    mode: ExecutionMode::Async,
                },
            )
            .expect("async incremental pagerank");
    }
    // The last batch was never ingested above; do it + one final run.
    cluster.ingest(batches[0].iter().copied());
    let _ = cluster
        .run_with(
            pagerank(),
            RunOptions {
                reuse_state: true,
                mode: ExecutionMode::Async,
            },
        )
        .expect("final async incremental");
    let got = cluster.dump_states();
    cluster.shutdown();

    let mut all = batches;
    all.rotate_left(1); // order is irrelevant to the final edge set
    let want = full_recompute(3, &final_edges(&base, &all));
    assert_ranks_agree(&got, &want, "async delta");
}

#[test]
fn delta_pagerank_redistributes_dangling_mass_sync() {
    let n = 600;
    let base = dangling_graph(n);
    let batches = dangling_batches(n);

    let mut cluster = Cluster::builder().agents(3).build();
    cluster.ingest_edges(base.iter().copied());
    cluster.run(pagerank()).expect("initial pagerank");
    for batch in &batches {
        cluster.ingest(batch.iter().copied());
        cluster
            .run_with(
                pagerank(),
                RunOptions {
                    reuse_state: true,
                    mode: ExecutionMode::Sync,
                },
            )
            .expect("incremental pagerank over sinks");
    }
    let got = cluster.dump_states();
    cluster.shutdown();

    let want = full_recompute(3, &final_edges(&base, &batches));
    assert_ranks_agree(&got, &want, "sync delta on a dangling-heavy graph");
}

#[test]
fn delta_pagerank_redistributes_dangling_mass_async() {
    let n = 400;
    let base = dangling_graph(n);
    let batches = dangling_batches(n);

    let mut cluster = Cluster::builder().agents(3).build();
    cluster.ingest_edges(base.iter().copied());
    // Cold-start async run is already on the delta path: the entire
    // dangling share flows through the cumulative-report protocol.
    for (i, batch) in batches.iter().enumerate() {
        if i > 0 {
            cluster.ingest(batch.iter().copied());
        }
        cluster
            .run_with(
                pagerank(),
                RunOptions {
                    reuse_state: i > 0,
                    mode: ExecutionMode::Async,
                },
            )
            .expect("async incremental pagerank over sinks");
    }
    cluster.ingest(batches[0].iter().copied());
    cluster
        .run_with(
            pagerank(),
            RunOptions {
                reuse_state: true,
                mode: ExecutionMode::Async,
            },
        )
        .expect("final async incremental over sinks");
    let got = cluster.dump_states();
    cluster.shutdown();

    let mut all = batches;
    all.rotate_left(1);
    let want = full_recompute(3, &final_edges(&base, &all));
    assert_ranks_agree(&got, &want, "async delta on a dangling-heavy graph");
}

#[test]
fn incremental_wcc_matches_full_recompute_bit_exact() {
    let n = 2000;
    let base = base_graph(n);
    let inserts: Vec<EdgeChange> = (0..n)
        .step_by(13)
        .filter(|&i| (i * 17 + 9) % n != i)
        .map(|i| EdgeChange::insert(i, (i * 17 + 9) % n))
        .collect();

    let mut cluster = Cluster::builder().agents(3).build();
    cluster.ingest_edges(base.iter().copied());
    cluster.run(Wcc::new()).expect("initial wcc");
    cluster.ingest(inserts.iter().copied());
    cluster
        .run_with(
            Wcc::new(),
            RunOptions {
                reuse_state: true,
                mode: ExecutionMode::Sync,
            },
        )
        .expect("incremental wcc");
    let got = cluster.dump_states();
    cluster.shutdown();

    let mut full = Cluster::builder().agents(3).build();
    full.ingest_edges(final_edges(&base, &[inserts]).iter().copied());
    full.run(Wcc::new()).expect("full wcc");
    let want = full.dump_states();
    full.shutdown();

    assert_eq!(got, want, "incremental WCC must be bit-exact");
}

#[test]
fn incremental_sssp_matches_full_recompute_bit_exact() {
    let n = 2000;
    let base = base_graph(n);
    let inserts: Vec<EdgeChange> = (0..n)
        .step_by(11)
        .filter(|&i| (i * 23 + 7) % n != i)
        .map(|i| EdgeChange::insert(i, (i * 23 + 7) % n))
        .collect();

    let mut cluster = Cluster::builder().agents(3).build();
    cluster.ingest_edges(base.iter().copied());
    cluster.run(Sssp::new(0)).expect("initial sssp");
    cluster.ingest(inserts.iter().copied());
    cluster
        .run_with(
            Sssp::new(0),
            RunOptions {
                reuse_state: true,
                mode: ExecutionMode::Sync,
            },
        )
        .expect("incremental sssp");
    let got = cluster.dump_states();
    cluster.shutdown();

    let mut full = Cluster::builder().agents(3).build();
    full.ingest_edges(final_edges(&base, &[inserts]).iter().copied());
    full.run(Sssp::new(0)).expect("full sssp");
    let want = full.dump_states();
    full.shutdown();

    assert_eq!(
        got, want,
        "incremental SSSP over insertions must be bit-exact"
    );
}

#[test]
fn delta_pagerank_survives_mid_run_view_change() {
    let n = 800;
    let base = base_graph(n);
    let batches = change_batches(n);

    let cfg = SystemConfig {
        quiesce_deadline: Duration::from_secs(60),
        run_deadline: Duration::from_secs(120),
        ..SystemConfig::default()
    };
    let mut cluster = Cluster::builder().agents(3).config(cfg).build();
    cluster.ingest_edges(base.iter().copied());
    cluster.run(pagerank()).expect("initial pagerank");
    cluster.ingest(batches.iter().flatten().copied());

    // Scale events land mid-incremental-run: parked residuals and
    // in-flight pending deltas must migrate with their vertices.
    let handle = cluster
        .start_run(
            pagerank(),
            RunOptions {
                reuse_state: true,
                mode: ExecutionMode::Sync,
            },
        )
        .expect("start incremental run");
    let added = cluster.add_agents(1);
    assert_eq!(added.len(), 1);
    let removed = cluster.remove_agents(2);
    assert_eq!(removed.len(), 2);
    cluster
        .wait_run(handle)
        .expect("incremental run absorbs scale events");
    let got = cluster.dump_states();
    cluster.shutdown();

    let want = full_recompute(3, &final_edges(&base, &batches));
    assert_ranks_agree(&got, &want, "delta run across a mid-run view change");
}

#[test]
fn delta_pagerank_under_chaos_matches_clean_full_recompute() {
    let n = 600;
    let base = base_graph(n);
    let batches = change_batches(n);

    let cfg = SystemConfig {
        request_timeout: Duration::from_secs(5),
        send_policy: SendPolicy {
            retries: 6,
            base_delay: Duration::from_millis(2),
            deadline: Duration::from_secs(10),
        },
        quiesce_deadline: Duration::from_secs(60),
        run_deadline: Duration::from_secs(120),
        ..SystemConfig::default()
    };
    // Residual corrections and delta pushes ride ordinary PUSH frames,
    // so the reliable layer's exactly-once accounting must keep the
    // f64 sums exact under drops and duplicating retries.
    let plan = FaultPlan::uniform(0.05, 0.01, Duration::ZERO, Duration::from_millis(5));
    let mut chaos = Cluster::builder()
        .agents(3)
        .config(cfg)
        .chaos(plan, 0xDE17A)
        .build();
    chaos.ingest_edges(base.iter().copied());
    chaos.run(pagerank()).expect("initial pagerank under chaos");
    for batch in &batches {
        chaos.ingest(batch.iter().copied());
        chaos
            .run_with(
                pagerank(),
                RunOptions {
                    reuse_state: true,
                    mode: ExecutionMode::Sync,
                },
            )
            .expect("incremental pagerank under chaos");
    }
    let got = chaos.dump_states();
    let stats = chaos.fault().expect("chaos handle").stats();
    assert!(stats.dropped() > 0, "no frames dropped — chaos was a no-op");
    chaos.shutdown();

    let want = full_recompute(3, &final_edges(&base, &batches));
    assert_ranks_agree(&got, &want, "delta runs under chaos transport");
}
