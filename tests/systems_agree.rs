//! Cross-crate integration: every system in the workspace — ElGA, the
//! Blogel-like BSP engine, the GraphX-like snapshot engine, the
//! STINGER-like dynamic structure, the GAPbs-like kernels, and the
//! single-threaded references — must agree on the paper's two
//! evaluation algorithms over generated catalog datasets (§4.3: "All
//! results were checked for correctness among the baselines and ElGA").

use elga::baselines::{snapshot, BlogelEngine, GapGraph, SnapshotEngine, Stinger};
use elga::core::program::{ExecutionMode, RunOptions};
use elga::graph::csr::Csr;
use elga::graph::reference;
use elga::prelude::*;

fn densify(edges: &[(u64, u64)]) -> (Vec<u64>, Vec<(u64, u64)>) {
    let mut ids: Vec<u64> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
    ids.sort_unstable();
    ids.dedup();
    let index: std::collections::HashMap<u64, u64> = ids
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u64))
        .collect();
    let dense = edges.iter().map(|&(u, v)| (index[&u], index[&v])).collect();
    (ids, dense)
}

fn dataset(name: &str, seed: u64) -> Vec<(u64, u64)> {
    let ds = elga::gen::catalog::find(name).expect("catalog");
    let (_, mut edges) = ds.generate(4e-7, seed);
    edges.sort_unstable();
    edges.dedup();
    edges.retain(|&(u, v)| u != v);
    edges
}

#[test]
fn all_systems_agree_on_wcc() {
    let edges = dataset("LiveJournal", 3);
    let truth = reference::wcc(edges.iter().copied());
    let (ids, dense) = densify(&edges);
    let csr = Csr::from_edges(Some(ids.len()), &dense);

    // ElGA.
    let mut cluster = Cluster::builder().agents(4).build();
    cluster.ingest_edges(edges.iter().copied());
    cluster.run(Wcc::new()).expect("elga wcc");

    // Blogel-like.
    let blogel = BlogelEngine::new(csr.clone(), 3);
    let (blogel_labels, _) = blogel.wcc();

    // GraphX-like (RDD style).
    let (rdd_labels, _) = snapshot::rdd_wcc(&csr);

    // GAPbs-like.
    let gap = GapGraph::build(&dense, 3);
    let gap_labels = gap.wcc();

    // STINGER-like.
    let mut stinger = Stinger::new();
    for &(u, v) in &edges {
        stinger.insert(u, v);
    }

    for (dense_id, &orig) in ids.iter().enumerate() {
        let want = truth[&orig];
        let want_dense = ids.binary_search(&want).expect("label is a vertex") as u64;
        assert_eq!(cluster.query_u64(orig), Some(want), "elga v{orig}");
        assert_eq!(blogel_labels[dense_id], want_dense, "blogel v{orig}");
        assert_eq!(rdd_labels[dense_id], want_dense, "rdd v{orig}");
        assert_eq!(gap_labels[dense_id], want_dense, "gap v{orig}");
        assert_eq!(stinger.component(orig), Some(want), "stinger v{orig}");
    }
    cluster.shutdown();
}

#[test]
fn all_systems_agree_on_pagerank() {
    let edges = dataset("Twitter-2010", 5);
    let (ids, dense) = densify(&edges);
    let csr = Csr::from_edges(Some(ids.len()), &dense);
    let iters = 15;
    let expect = reference::pagerank(&csr, 0.85, iters);

    let mut cluster = Cluster::builder().agents(4).build();
    cluster.ingest_edges(edges.iter().copied());
    cluster
        .run(PageRank::new(0.85).with_max_iters(iters as u32))
        .expect("elga pr");

    let blogel = BlogelEngine::new(csr.clone(), 3).pagerank(0.85, iters);
    let rdd = snapshot::rdd_pagerank(&csr, 0.85, iters);
    let gap = GapGraph::build(&dense, 3).pagerank(0.85, iters);

    for (dense_id, &orig) in ids.iter().enumerate() {
        let want = expect[dense_id];
        let got = cluster.query_f64(orig).expect("rank");
        assert!(
            (got - want).abs() < reference::PAGERANK_TOLERANCE,
            "elga v{orig}: {got} vs {want}"
        );
        assert!((blogel[dense_id] - want).abs() < 1e-12, "blogel v{orig}");
        assert!((rdd[dense_id] - want).abs() < 1e-12, "rdd v{orig}");
        assert!((gap[dense_id] - want).abs() < 1e-12, "gap v{orig}");
    }
    cluster.shutdown();
}

#[test]
fn dynamic_maintainers_agree_over_a_change_stream() {
    // ElGA (incremental runs), the snapshot engine, and STINGER must
    // track identical components through a mixed stream.
    let base = dataset("Amazon0601", 7);
    let (keep, play) = base.split_at(base.len() * 3 / 4);

    let mut cluster = Cluster::builder().agents(3).build();
    cluster.ingest_edges(keep.iter().copied());
    cluster.run(Wcc::new()).expect("initial");

    let mut snap = SnapshotEngine::new(2);
    snap.load(keep.iter().copied());

    let mut stinger = Stinger::new();
    for &(u, v) in keep {
        stinger.insert(u, v);
    }

    let mut model: Vec<(u64, u64)> = keep.to_vec();
    for chunk in play.chunks(16) {
        let batch: Vec<EdgeChange> = chunk
            .iter()
            .map(|&(u, v)| EdgeChange::insert(u, v))
            .collect();
        cluster.ingest(batch.iter().copied());
        cluster
            .run_with(
                Wcc::new(),
                RunOptions {
                    reuse_state: true,
                    mode: ExecutionMode::Sync,
                },
            )
            .expect("incremental");
        snap.apply_batch(&elga::graph::types::Batch::new(0, batch));
        for &(u, v) in chunk {
            stinger.insert(u, v);
        }
        model.extend_from_slice(chunk);

        let truth = reference::wcc(model.iter().copied());
        for &(u, _) in chunk {
            let want = truth[&u];
            assert_eq!(cluster.query_u64(u), Some(want), "elga v{u}");
            assert_eq!(snap.label(u), Some(want), "snapshot v{u}");
            assert_eq!(stinger.component(u), Some(want), "stinger v{u}");
        }
    }
    cluster.shutdown();
}

#[test]
fn prelude_covers_the_quickstart_surface() {
    // The facade's prelude must be sufficient for the README flow.
    let mut cluster = Cluster::builder()
        .agents(2)
        .config(SystemConfig::default())
        .build();
    cluster.ingest([EdgeChange::insert(1, 2), EdgeChange::insert(2, 1)]);
    cluster.run(PageRank::new(0.85).with_max_iters(5)).unwrap();
    let r = cluster.query_f64(1).unwrap();
    assert!((r - 0.5).abs() < 1e-9, "symmetric pair splits mass: {r}");
    let ring = Ring::from_agents(HashKind::Wang, 10, 0..4);
    assert!(ring.owner(1).is_some());
    let mut sketch = CountMinSketch::new(64, 4);
    sketch.inc(9);
    assert_eq!(sketch.estimate(9), 1);
    let _ = EdgeLocator::new(ring, LocatorConfig::default());
    cluster.shutdown();
}
