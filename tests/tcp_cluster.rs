//! The full system over real TCP sockets: every endpoint is a
//! `tcp://127.0.0.1:*` address and every message crosses the loopback
//! stack — the paper's inter-node transport (§3.5), exercised end to
//! end with the same entities the in-process cluster uses.

use elga::core::agent::Agent;
use elga::core::client::ClientProxy;
use elga::core::directory::{self, DirectoryRole};
use elga::core::msg::{self, packet, RunInfo};
use elga::core::program::ProgramSpec;
use elga::core::streamer::Streamer;
use elga::graph::reference;
use elga::net::{Addr, Frame, TcpTransport, Transport};
use elga::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn tcp_any() -> Addr {
    Addr::parse("tcp://127.0.0.1:0").expect("addr")
}

/// Bind concrete loopback ports for the fixed endpoints (master, lead
/// directory mailbox, bus) by briefly binding port 0 listeners.
fn reserve_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("reserve")
        .local_addr()
        .expect("addr")
        .port()
}

#[test]
fn wcc_and_pagerank_over_tcp_sockets() {
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let cfg = SystemConfig::default();

    // Fixed endpoints need concrete ports (participants dial them).
    let master = Addr::parse(&format!("tcp://127.0.0.1:{}", reserve_port())).expect("addr");
    let dir0 = Addr::parse(&format!("tcp://127.0.0.1:{}", reserve_port())).expect("addr");
    let bus = Addr::parse(&format!("tcp://127.0.0.1:{}", reserve_port())).expect("addr");

    let _master = directory::spawn_master(transport.clone(), master.clone());
    let _dir = directory::spawn_directory_at(
        transport.clone(),
        cfg.clone(),
        0,
        master.clone(),
        dir0.clone(),
        DirectoryRole::Lead { bus: bus.clone() },
    );

    // Three agents on ephemeral ports.
    let mut agent_handles = Vec::new();
    for id in 1..=3u64 {
        let agent = Agent::join_at(
            transport.clone(),
            cfg.clone(),
            id,
            tcp_any(),
            dir0.clone(),
            bus.clone(),
        )
        .expect("agent join over tcp");
        agent_handles.push(agent.spawn());
    }

    // Stream a graph in over sockets.
    let edges: Vec<(u64, u64)> = vec![
        (0, 1),
        (1, 2),
        (2, 0),
        (2, 3),
        (3, 4),
        (10, 11),
        (11, 12),
        (12, 10),
    ];
    let mut streamer =
        Streamer::connect(transport.clone(), cfg.clone(), dir0.clone()).expect("streamer");
    let changes: Vec<EdgeChange> = edges
        .iter()
        .map(|&(u, v)| EdgeChange::insert(u, v))
        .collect();
    streamer.send_batch(&changes).expect("send");

    // Drive a WCC run: subscribe to the bus for the done signal, then
    // REQ the start.
    let run_to_done = |spec: ProgramSpec| {
        let (tag, params) = spec.encode();
        let sub = transport
            .subscribe(&bus, &[packet::ADVANCE])
            .expect("subscribe");
        let rep = transport
            .request(
                &dir0,
                msg::encode_start(&RunInfo {
                    run_id: 0,
                    tag,
                    params,
                    reuse_state: false,
                    asynchronous: false,
                    delta: false,
                    dangling_base: 0.0,
                }),
                Duration::from_secs(30),
            )
            .expect("start");
        let run_id = rep.reader().u64().expect("run id");
        loop {
            let d = sub.recv_timeout(Duration::from_secs(60)).expect("advance");
            if let Some(adv) = msg::decode_advance(&d.frame) {
                if adv.run == run_id && adv.done {
                    break;
                }
            }
        }
        run_id
    };

    // Give ingest a moment to settle (no driver-side quiesce here; the
    // run start is serialized by the directory's migrate barrier).
    std::thread::sleep(Duration::from_millis(200));
    let wcc_run = run_to_done(Wcc::new().into());

    // Agents flip their double-buffered serving snapshot when *they*
    // process the done broadcast — a query racing straight off the bus
    // can still see the previous snapshot (or a miss). The answer's
    // run tag says which completed run it belongs to; poll until it is
    // the one we watched finish.
    let query_run = |proxy: &mut ClientProxy, v: u64, run: u64| -> u64 {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match proxy.query(v) {
                Some(r) if r.run == run => return r.state,
                _ if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10))
                }
                got => panic!("vertex {v}: no run-{run} answer over tcp (last: {got:?})"),
            }
        }
    };

    let mut proxy =
        ClientProxy::connect(transport.clone(), cfg.clone(), dir0.clone()).expect("proxy");
    let expect = reference::wcc(edges.iter().copied());
    for (&v, &label) in &expect {
        assert_eq!(
            query_run(&mut proxy, v, wcc_run),
            label,
            "vertex {v} over tcp"
        );
    }

    // And PageRank across the same sockets.
    let pr_run = run_to_done(PageRank::new(0.85).with_max_iters(10).into());
    proxy.refresh().expect("refresh");
    let mass: f64 = expect
        .keys()
        .map(|&v| f64::from_bits(query_run(&mut proxy, v, pr_run)))
        .sum();
    assert!((mass - 1.0).abs() < 1e-9, "rank mass over tcp: {mass}");

    // Shut the whole deployment down over the wire.
    let _ = transport.request(
        &dir0,
        Frame::signal(packet::SHUTDOWN),
        Duration::from_secs(5),
    );
    if let Ok(out) = transport.sender(&master) {
        let _ = out.send(Frame::signal(packet::SHUTDOWN));
    }
    for h in agent_handles {
        let _ = h.join();
    }
}
