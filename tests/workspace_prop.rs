//! Workspace-level property tests: randomized change streams and
//! elasticity schedules driven against the full system, checked
//! against the references. These are the heaviest invariants in the
//! suite, so case counts are modest.

use elga::core::program::{ExecutionMode, RunOptions};
use elga::graph::reference;
use elga::prelude::*;
use proptest::prelude::*;

fn apply_model(model: &mut std::collections::HashSet<(u64, u64)>, c: &EdgeChange) {
    let e = (c.edge.src, c.edge.dst);
    if c.is_insert() {
        model.insert(e);
    } else {
        model.remove(&e);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Any interleaving of batches and incremental WCC runs tracks the
    /// union-find ground truth (insertion-only streams).
    #[test]
    fn incremental_wcc_tracks_reference(
        batches in prop::collection::vec(
            prop::collection::vec((0u64..48, 0u64..48), 1..24),
            1..5,
        ),
        agents in 2usize..5,
    ) {
        let mut cluster = Cluster::builder().agents(agents).build();
        let mut model: std::collections::HashSet<(u64, u64)> = Default::default();
        let mut first = true;
        for batch in &batches {
            let changes: Vec<EdgeChange> = batch
                .iter()
                .filter(|&&(u, v)| u != v)
                .map(|&(u, v)| EdgeChange::insert(u, v))
                .collect();
            for c in &changes {
                apply_model(&mut model, c);
            }
            cluster.ingest(changes.iter().copied());
            let opts = RunOptions {
                reuse_state: !first,
                mode: ExecutionMode::Sync,
            };
            first = false;
            cluster.run_with(Wcc::new(), opts).expect("run");
            let truth = reference::wcc(model.iter().copied());
            for (&v, &label) in &truth {
                prop_assert_eq!(cluster.query_u64(v), Some(label), "vertex {}", v);
            }
        }
        cluster.shutdown();
    }

    /// Elastic churn (random join/leave schedule) never corrupts the
    /// graph: WCC recomputed after each change matches ground truth.
    #[test]
    fn elastic_churn_preserves_graph(
        edges in prop::collection::hash_set((0u64..40, 0u64..40), 10..60),
        schedule in prop::collection::vec(any::<bool>(), 1..4),
    ) {
        let edges: Vec<(u64, u64)> = edges.into_iter().filter(|&(u, v)| u != v).collect();
        prop_assume!(!edges.is_empty());
        let mut cluster = Cluster::builder().agents(2).build();
        cluster.ingest_edges(edges.iter().copied());
        let truth = reference::wcc(edges.iter().copied());
        for grow in schedule {
            if grow {
                cluster.add_agents(1);
            } else if cluster.agent_count() > 1 {
                cluster.remove_last_agent();
            }
            cluster.quiesce().expect("quiesce");
            cluster.run(Wcc::new()).expect("wcc");
            for (&v, &label) in &truth {
                prop_assert_eq!(cluster.query_u64(v), Some(label), "vertex {}", v);
            }
        }
        cluster.shutdown();
    }

    /// Sync and async execution agree for monotone programs.
    #[test]
    fn sync_and_async_wcc_agree(
        edges in prop::collection::hash_set((0u64..32, 0u64..32), 5..40),
    ) {
        let edges: Vec<(u64, u64)> = edges.into_iter().filter(|&(u, v)| u != v).collect();
        prop_assume!(!edges.is_empty());
        let mut cluster = Cluster::builder().agents(3).build();
        cluster.ingest_edges(edges.iter().copied());
        cluster
            .run_with(Wcc::new(), RunOptions { reuse_state: false, mode: ExecutionMode::Sync })
            .expect("sync");
        let vertices: Vec<u64> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
        let sync: Vec<_> = vertices.iter().map(|&v| cluster.query_u64(v)).collect();
        cluster
            .run_with(Wcc::new(), RunOptions { reuse_state: false, mode: ExecutionMode::Async })
            .expect("async");
        let asyn: Vec<_> = vertices.iter().map(|&v| cluster.query_u64(v)).collect();
        prop_assert_eq!(sync, asyn);
        cluster.shutdown();
    }
}
