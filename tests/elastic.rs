//! Elasticity tests: the Figure 18 autoscaler loop end to end, batched
//! scale-down cost (one view change, not n), honest partial-aware
//! metrics aggregation, and the event-tracing layer across a full
//! elastic lifecycle.
//!
//! Result-stability contract across scale events follows
//! `tests/determinism.rs`: WCC combines with `min` and is bit-exact in
//! every deployment, so it pins bit-equality; multi-agent PageRank sums
//! floats in scheduling-dependent arrival order, so it pins the usual
//! 1e-9 agreement.

use elga::core::program::RunOptions;
use elga::net::SendPolicy;
use elga::prelude::*;
use elga::trace::EventKind;
use std::collections::HashSet;
use std::time::Duration;

/// The chaos-test ring with chords: connected, mildly degree-skewed,
/// small enough that scale events dominate the runtime.
fn chain_graph(n: u64) -> Vec<(u64, u64)> {
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n));
        if i % 3 == 0 {
            edges.push((i, (i * 7 + 3) % n));
        }
    }
    edges.retain(|&(u, v)| u != v);
    edges.sort_unstable();
    edges.dedup();
    edges
}

#[test]
fn scale_down_by_n_is_one_view_change() {
    let edges = chain_graph(400);
    let mut cluster = Cluster::builder().agents(6).build();
    cluster.ingest_edges(edges.iter().copied());
    cluster.run(Wcc::new()).expect("wcc before scale-down");
    let want = cluster.dump_states();

    let epoch_before = cluster.view().epoch;
    let removed = cluster.remove_agents(3);
    assert_eq!(removed.len(), 3, "asked for three departures");
    assert_eq!(cluster.agent_count(), 3);
    for id in &removed {
        assert!(
            !cluster.agent_ids().contains(id),
            "agent {id} still in view"
        );
    }
    assert_eq!(
        cluster.view().epoch,
        epoch_before + 1,
        "batched scale-down must cost exactly one view change"
    );

    // The survivors own every edge the departers migrated away.
    cluster.run(Wcc::new()).expect("wcc after scale-down");
    assert_eq!(
        cluster.dump_states(),
        want,
        "WCC must be bit-exact across the batched leave"
    );
    cluster.shutdown();
}

#[test]
fn autoscaler_follows_step_function_load() {
    let edges = chain_graph(600);
    let mut cluster = Cluster::builder().agents(2).build();
    cluster.ingest_edges(edges.iter().copied());

    let pr = PageRank::new(0.85).with_max_iters(8);
    cluster.run(pr).expect("pagerank at 2 agents");
    let pr_want = cluster.dump_states();
    cluster.run(Wcc::new()).expect("wcc at 2 agents");
    let wcc_want = cluster.dump_states();

    // A near-instant EMA (1 ms window, no cooldown) collapses the
    // paper's minutes-long Figure 18 loop into one driver call per
    // load step while keeping the real policy in the path.
    let mut policy =
        EmaAutoscaler::new(Duration::from_millis(1), 50.0, 2, 8).with_cooldown(Duration::ZERO);

    // Load steps up: 400 units at 50 per agent → target 8. Joins take
    // effect at the next barrier; quiesce waits the migration out.
    assert_eq!(cluster.autoscale_once(&mut policy, 400.0), Some(8));
    cluster.quiesce().expect("quiesce after scale-up");
    assert_eq!(
        cluster.agent_count(),
        8,
        "cluster follows the scale-up target"
    );

    cluster.run(Wcc::new()).expect("wcc at 8 agents");
    assert_eq!(
        cluster.dump_states(),
        wcc_want,
        "WCC must be bit-exact across scale-up"
    );

    // Load steps down: the EMA has long since forgotten the spike, so
    // 80 units → target 2, applied as ONE batched leave.
    let epoch_before = cluster.view().epoch;
    assert_eq!(cluster.autoscale_once(&mut policy, 80.0), Some(2));
    assert_eq!(
        cluster.agent_count(),
        2,
        "cluster follows the scale-down target"
    );
    assert_eq!(
        cluster.view().epoch,
        epoch_before + 1,
        "autoscaler scale-down by six agents must be one view change"
    );

    cluster.run(Wcc::new()).expect("wcc after scale-down");
    assert_eq!(
        cluster.dump_states(),
        wcc_want,
        "WCC must be bit-exact across scale-down"
    );
    cluster.run(pr).expect("pagerank after scale cycle");
    let pr_got = cluster.dump_states();
    assert_eq!(pr_got.len(), pr_want.len());
    for (v, &bits) in &pr_want {
        let a = f64::from_bits(bits);
        let b = f64::from_bits(pr_got[v]);
        assert!((a - b).abs() < 1e-9, "pagerank v{v}: {a} vs {b}");
    }

    // A steady load at the current target is a no-op.
    assert_eq!(cluster.autoscale_once(&mut policy, 80.0), None);
    assert_eq!(cluster.agent_count(), 2);
    cluster.shutdown();
}

#[test]
fn async_run_survives_scale_up_batched_scale_down_and_crash() {
    // The full mode × elasticity × fault matrix in one run: while an
    // asynchronous WCC run is live, one agent joins, three leave in a
    // single batched view change, and one crashes (evicted by failure
    // detection, run aborted, change log replayed, run restarted —
    // still asynchronous). The converged labels must be bit-identical
    // to an undisturbed synchronous run's.
    let edges = chain_graph(3000);

    let mut clean = Cluster::builder().agents(4).build();
    clean.ingest_edges(edges.iter().copied());
    clean.run(Wcc::new()).expect("undisturbed sync wcc");
    let want = clean.dump_states();
    clean.shutdown();

    let cfg = SystemConfig {
        // Fast failure detection so eviction of the crashed agent does
        // not dominate the test — but with a full second of tolerance:
        // on a loaded single-core runner a live agent's thread can
        // starve past a few hundred ms mid-migration, and a spurious
        // second eviction breaks the scenario.
        heartbeat_interval: Duration::from_millis(25),
        heartbeat_misses: 40,
        quiesce_deadline: Duration::from_secs(60),
        run_deadline: Duration::from_secs(120),
        ..SystemConfig::default()
    };
    let mut cluster = Cluster::builder().agents(6).config(cfg).build();
    cluster.ingest_edges(edges.iter().copied());

    let handle = cluster
        .start_run(
            Wcc::new(),
            RunOptions {
                reuse_state: false,
                mode: ExecutionMode::Async,
            },
        )
        .expect("start async run");

    // Join mid-run: the directory pauses the async run, migrates, and
    // re-releases it under the new view.
    let added = cluster.add_agents(1);
    assert_eq!(added.len(), 1);
    // Batched scale-down mid-run: one LEAVE carrying all three
    // departures (the single-view-change cost is pinned by
    // `scale_down_by_n_is_one_view_change`; here the point is that the
    // live async run absorbs it).
    let removed = cluster.remove_agents(3);
    assert_eq!(removed.len(), 3);
    // Crash mid-run: no drain, no goodbye.
    let victim = cluster.agent_ids()[0];
    cluster.kill_agent(victim);

    cluster
        .wait_run(handle)
        .expect("async run survives join, batched leave, and crash");
    assert_eq!(cluster.agent_count(), 3, "victim evicted");
    assert!(!cluster.agent_ids().contains(&victim));

    assert_eq!(
        cluster.dump_states(),
        want,
        "async labels after the elastic storm must match the undisturbed sync run"
    );
    cluster.shutdown();
}

#[test]
fn metrics_reports_partial_when_drain_target_unreachable() {
    let cfg = SystemConfig {
        // No eviction: the dead agent must stay in the view so the
        // DRAIN retry exercises the partial path rather than the
        // member-departed path.
        failure_detection: false,
        request_timeout: Duration::from_millis(500),
        send_policy: SendPolicy {
            retries: 1,
            base_delay: Duration::from_millis(1),
            deadline: Duration::from_secs(1),
        },
        ..SystemConfig::default()
    };
    let mut cluster = Cluster::builder().agents(4).config(cfg).build();
    cluster.ingest_edges(chain_graph(100).iter().copied());
    cluster.run(Wcc::new()).expect("wcc");

    let m = cluster.metrics();
    assert!(!m.partial, "all agents reachable — aggregate is complete");
    assert_eq!(m.agents_drained, 4);

    let victim = *cluster.agent_ids().last().expect("agents");
    cluster.kill_agent(victim);
    let m = cluster.metrics();
    assert!(
        m.partial,
        "an unreachable DRAIN target must mark the aggregate partial"
    );
    assert_eq!(m.agents_drained, 3, "three of four reports landed");
    cluster.shutdown();
}

#[test]
fn tracing_captures_phases_views_and_migrations() {
    let cfg = SystemConfig {
        tracing: true,
        ..SystemConfig::default()
    };
    let mut cluster = Cluster::builder().agents(2).config(cfg).build();
    cluster.ingest_edges(chain_graph(300).iter().copied());
    cluster
        .run(PageRank::new(0.85).with_max_iters(4))
        .expect("pagerank");

    // Scale up (join migration), run, then retire one agent (leave
    // migration); the departer's buffer is salvaged before its LEAVE.
    cluster.add_agents(2);
    cluster
        .run(PageRank::new(0.85).with_max_iters(4))
        .expect("pagerank scaled");
    let removed = cluster.remove_agents(1);
    assert_eq!(removed.len(), 1);

    let tracks = cluster.collect_traces();
    let names: Vec<&str> = tracks.iter().map(|(n, _)| n.as_str()).collect();
    assert!(
        names.contains(&"directory-0"),
        "lead directory track missing: {names:?}"
    );
    assert!(
        names.contains(&"streamer"),
        "streamer track missing: {names:?}"
    );
    assert!(
        names.contains(&format!("agent-{}", removed[0]).as_str()),
        "departed agent's salvaged track missing: {names:?}"
    );
    assert!(
        names.iter().filter(|n| n.starts_with("agent-")).count() >= 3,
        "expected the departer plus live agents: {names:?}"
    );

    let kinds: HashSet<EventKind> = tracks
        .iter()
        .flat_map(|(_, evs)| evs.iter().map(|e| e.kind))
        .collect();
    for kind in [
        EventKind::PhaseScatter,
        EventKind::PhaseCombine,
        EventKind::PhaseApply,
        EventKind::ViewAdopt,
        EventKind::MigrateSend,
        EventKind::MigrateRecv,
    ] {
        assert!(kinds.contains(&kind), "no {kind:?} event in {kinds:?}");
    }

    // Phase spans carry durations; the JSON export names every track.
    let has_span = tracks
        .iter()
        .flat_map(|(_, evs)| evs)
        .any(|e| e.kind == EventKind::PhaseScatter && e.dur_nanos > 0);
    assert!(has_span, "phase spans must record nonzero durations");
    let json = elga::trace::chrome_trace_json(&tracks);
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("thread_name"));
    assert!(json.contains("\"scatter\"") && json.contains("\"view_adopt\""));

    // Draining consumed the buffers: a second collection has no phase
    // events (at most bookkeeping from the collection itself).
    let again = cluster.collect_traces();
    assert!(
        !again
            .iter()
            .flat_map(|(_, evs)| evs)
            .any(|e| e.kind == EventKind::PhaseScatter),
        "drain must consume events"
    );
    cluster.shutdown();
}

#[test]
fn tracing_disabled_collects_nothing() {
    let mut cluster = Cluster::builder().agents(2).build();
    cluster.ingest_edges(chain_graph(60).iter().copied());
    cluster.run(Wcc::new()).expect("wcc");
    assert!(
        cluster.collect_traces().is_empty(),
        "tracing off must record and collect nothing"
    );
    cluster.shutdown();
}
