//! Hermetic shim for the `parking_lot` crate. See `shims/README.md`.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s API shape: `lock`
//! returns the guard directly (a poisoned lock is transparently
//! recovered — panicking while holding a lock does not wedge other
//! threads with a `PoisonError`).

use std::fmt;
use std::sync::TryLockError;

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s unpoisonable API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`. `const`, so it works in statics.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves unique
    /// ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_guards_and_releases() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("drop while held");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn const_static_construction() {
        static S: Mutex<Option<u32>> = Mutex::new(None);
        *S.lock() = Some(5);
        assert_eq!(*S.lock(), Some(5));
    }
}
