//! Hermetic shim for the `bytes` crate. See `shims/README.md`.
//!
//! [`Bytes`] is an immutable, cheaply-cloneable byte buffer whose
//! clones share one allocation (the frame pool's pointer-equality test
//! depends on this). [`BytesMut`] is a growable build buffer with the
//! little-endian `put_*` writers from the [`BufMut`] trait; `split()`
//! detaches the filled bytes and `freeze()` makes them shared.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable byte buffer; clones share the underlying storage. A
/// `Bytes` may view a sub-range of its allocation ([`Bytes::slice`]),
/// so many wire messages carved out of one receive slab share a single
/// `Arc` without copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer owning a copy of `slice`.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy view of `range` (relative to this view) sharing the
    /// same allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or reversed.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

/// A growable build buffer.
#[derive(Debug, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// A buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current allocation size.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Drop all written bytes, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Shorten to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Detach all written bytes into a new `BytesMut`, leaving this
    /// buffer empty.
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            buf: std::mem::take(&mut self.buf),
        }
    }

    /// Convert into an immutable shared [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Append a byte slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// Little-endian append operations for build buffers.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a `u16`, little endian.
    fn put_u16_le(&mut self, v: u16);
    /// Append a `u32`, little endian.
    fn put_u32_le(&mut self, v: u32);
    /// Append a `u64`, little endian.
    fn put_u64_le(&mut self, v: u64);
    /// Append an `f64`, little endian.
    fn put_f64_le(&mut self, v: f64);
    /// Append a byte slice.
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b.as_ptr(), c.as_ptr());
        assert_eq!(b, c);
    }

    #[test]
    fn slices_share_storage_and_nest() {
        let b = Bytes::from((0u8..32).collect::<Vec<_>>());
        let mid = b.slice(8..24);
        assert_eq!(mid.len(), 16);
        assert_eq!(mid[0], 8);
        assert_eq!(mid.as_ptr(), unsafe { b.as_ptr().add(8) });
        // Sub-slicing is relative to the view, not the allocation.
        let inner = mid.slice(4..=7);
        assert_eq!(&inner[..], &[12, 13, 14, 15]);
        let all = mid.slice(..);
        assert_eq!(all, mid);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_rejects_overrun() {
        let b = Bytes::from(vec![0u8; 4]);
        let _ = b.slice(2..8);
    }

    #[test]
    fn builder_roundtrip_little_endian() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(0xAB);
        m.put_u32_le(0x01020304);
        m.put_u64_le(7);
        m.put_f64_le(1.5);
        m.put_slice(&[9, 9]);
        let frozen = m.split().freeze();
        assert_eq!(frozen[0], 0xAB);
        assert_eq!(&frozen[1..5], &[4, 3, 2, 1]);
        assert_eq!(frozen.len(), 1 + 4 + 8 + 8 + 2);
    }

    #[test]
    fn split_leaves_buffer_reusable() {
        let mut m = BytesMut::with_capacity(4);
        m.put_u8(1);
        let first = m.split().freeze();
        assert!(m.is_empty());
        m.reserve(16);
        m.put_u8(2);
        assert_eq!(first[0], 1);
        assert_eq!(m[0], 2);
    }
}
