//! Hermetic shim for the `criterion` crate. See `shims/README.md`.
//!
//! A minimal wall-clock harness with criterion's API shape: groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. It times each
//! benchmark for roughly `measurement_time` after a warm-up and prints
//! one mean-per-iteration line — no statistics engine, no HTML
//! reports, no comparison to saved baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Function name plus a parameter rendering.
    pub fn new<F: fmt::Display, P: fmt::Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            function: Some(function.to_string()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter-only id (the group supplies the function name).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Runs one benchmark body repeatedly and records the mean.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    mean_nanos: f64,
    iters: u64,
}

impl Bencher {
    /// Time `f` repeatedly: warm up, then measure for roughly the
    /// configured measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        let deadline = start + self.measure;
        let mut iters = 0u64;
        while Instant::now() < deadline {
            // Batch iterations so the clock isn't read per-call for
            // nanosecond-scale bodies.
            for _ in 0..64 {
                std::hint::black_box(f());
            }
            iters += 64;
        }
        let elapsed = start.elapsed();
        self.iters = iters;
        self.mean_nanos = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// Top-level harness handle; also the builder for timing settings.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of samples upstream criterion would take; this shim only
    /// records it (one aggregate measurement is taken regardless).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Target duration of the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Duration of the warm-up run before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        self.run(None, id.into(), f);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, group: Option<&str>, id: BenchmarkId, mut f: F) {
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            measure: self.measurement_time,
            mean_nanos: 0.0,
            iters: 0,
        };
        f(&mut b);
        let label = match group {
            Some(g) => format!("{g}/{}", id.render()),
            None => id.render(),
        };
        println!(
            "bench {label:<48} {:>12.1} ns/iter ({} iters)",
            b.mean_nanos, b.iters
        );
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let name = self.name.clone();
        self.criterion.run(Some(&name), id.into(), f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let name = self.name.clone();
        self.criterion.run(Some(&name), id.into(), |b| f(b, input));
        self
    }

    /// End the group (bookkeeping no-op in this shim).
    pub fn finish(self) {}
}

/// Opaque value barrier; re-exported for parity with upstream.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function from named benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` from one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bencher_measures_and_counts() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_and_ids_render() {
        let mut c = quick();
        let mut g = c.benchmark_group("grp");
        g.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| black_box(0)));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert_eq!(BenchmarkId::new("f", 3).render(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).render(), "7");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
