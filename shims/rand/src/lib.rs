//! Hermetic shim for the `rand` crate. See `shims/README.md`.
//!
//! Provides the seed-deterministic subset the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen` / `gen_range` / `gen_bool`, and
//! `seq::SliceRandom::shuffle`. The generator is SplitMix64, so the
//! *sequences differ* from upstream `rand` for the same seed — every
//! in-repo consumer treats seeds as opaque determinism handles, never
//! as cross-implementation fixtures.

use std::ops::Range;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits (high half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from raw generator output via
/// [`Rng::gen`].
pub trait FromRng {
    /// Draw one uniform value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo draw: bias is < span / 2^64, far below what any
                // statistical consumer in this repo can observe, and it
                // keeps the sequence trivially reproducible.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u64, u32, usize, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform value from `range` (start inclusive, end exclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Full-width seed type.
    type Seed;

    /// Construct from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Named generator implementations.

    use super::{RngCore, SeedableRng};

    /// The default seedable generator: SplitMix64. Deterministic per
    /// seed; not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[..8]);
            StdRng {
                state: u64::from_le_bytes(bytes),
            }
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::{RngCore, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = SampleRange::sample_single(0..i + 1, rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_sequences_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(0..5u64);
            assert!(v < 5);
            seen_low |= v == 0;
            seen_high |= v == 4;
        }
        assert!(seen_low && seen_high, "range endpoints never sampled");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u64> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle left slice untouched");
    }

    #[test]
    fn bools_land_on_both_sides() {
        let mut rng = StdRng::seed_from_u64(13);
        let heads = (0..1000).filter(|_| rng.gen::<bool>()).count();
        assert!((300..700).contains(&heads), "coin badly biased: {heads}");
    }
}
