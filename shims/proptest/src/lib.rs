//! Hermetic shim for the `proptest` crate. See `shims/README.md`.
//!
//! Random-input property testing with upstream's surface syntax: the
//! `proptest!` macro, `any::<T>()`, range/tuple/`Just`/`prop_oneof!`
//! strategies, and `prop::collection::{vec, hash_set}`. Inputs are
//! drawn from a SplitMix64 generator seeded from the test's module
//! path and case index, so every run of a given test samples the same
//! sequence — failures reproduce without a persistence file.
//!
//! Differences from upstream, deliberate for hermeticity: no
//! shrinking (a failure reports the assertion, not a minimal
//! counterexample), no failure-persistence files, and
//! `prop_assume!` discards the case without generating a
//! replacement (acceptance criteria in this repo never filter more
//! than a sliver of the space).

pub mod test_runner {
    //! Deterministic case generation and run configuration.

    /// Per-test configuration; set with
    /// `#![proptest_config(ProptestConfig { cases: N, ..ProptestConfig::default() })]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Upstream-compat knob; shrinking is not implemented, the
        /// value is ignored.
        pub max_shrink_iters: u32,
        /// Upstream-compat knob; global rejects are not tracked, the
        /// value is ignored.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                max_global_rejects: 1024,
            }
        }
    }

    /// SplitMix64 generator seeded from (test name, case index): each
    /// test sees a stable, distinct input sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator for one case of one named test.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Input-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Type-erase into a [`BoxedStrategy`] (needed to mix strategy
        /// types, e.g. in `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among several strategies of one value type
    /// (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod arbitrary {
    //! Default strategies per type, reached through [`crate::any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draw one uniform value over the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Any bit pattern, NaNs and infinities included — callers
            // `prop_assume!` away what they can't accept.
            f64::from_bits(rng.next_u64())
        }
    }

    /// Strategy over a type's full domain; build with [`crate::any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The full-domain strategy for `T`: `any::<u64>()`, `any::<bool>()`…
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any::new()
}

pub mod collection {
    //! Collection strategies: `vec(element, size)` and
    //! `hash_set(element, size)`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Element-count specification: a `usize` for an exact size or a
    /// `Range<usize>` for a half-open interval.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy yielding `Vec`s of `element` samples.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy yielding `HashSet`s of `element` samples.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `HashSet` with a target size drawn from `size`. When the element
    /// domain is too small to reach the target, the set saturates at
    /// whatever distinct values a bounded number of draws produced.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 100 + 1000 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs: `use proptest::prelude::*;`.

    pub use crate::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! Namespaced re-exports matching upstream's `prop::` paths.
        pub use crate::collection;
    }
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` seeded random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { @cfg($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (@cfg($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let __name = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..u64::from(__config.cases) {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__name, __case);
                    $(
                        let $pat = $crate::strategy::Strategy::sample(&$strat, &mut __rng);
                    )+
                    // One closure per case: `prop_assume!` discards the
                    // case by returning early from it.
                    (move || $body)();
                }
            }
        )*
    };
}

/// Assert within a property; forwards to `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality within a property; forwards to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Assert inequality within a property; forwards to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Discard the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 1);
        let mut d = TestRng::for_case("u", 0);
        assert_ne!(b.next_u64(), c.next_u64());
        assert_ne!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn collections_respect_size_specs() {
        let mut rng = TestRng::for_case("sizes", 3);
        for _ in 0..200 {
            let v = crate::collection::vec(any::<u8>(), 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            let exact = crate::collection::vec(any::<u64>(), 7).sample(&mut rng);
            assert_eq!(exact.len(), 7);
            let s = crate::collection::hash_set(any::<u8>(), 0..4).sample(&mut rng);
            assert!(s.len() < 4);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::for_case("oneof", 0);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(strat.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro itself: patterns bind, ranges respect bounds,
        /// assume discards, tuple strategies compose.
        #[test]
        fn macro_end_to_end(
            x in 1u32..10,
            (lo, hi) in (0u64..50, 50u64..100),
            flip in any::<bool>(),
            items in prop::collection::vec(any::<u8>(), 0..6),
        ) {
            prop_assume!(x != 9);
            prop_assert!((1..9).contains(&x));
            prop_assert!(lo < hi, "lo {} hi {}", lo, hi);
            prop_assert_eq!(flip as u8 <= 1, true);
            prop_assert_ne!(items.len(), 6);
        }
    }
}
