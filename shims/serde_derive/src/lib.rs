//! Hermetic shim for `serde_derive`. See `shims/README.md`.
//!
//! The workspace only *annotates* types with `Serialize`/`Deserialize`
//! — nothing serializes at runtime (wire encoding is hand-rolled in
//! `elga-net`). These derives therefore expand to nothing: the
//! attribute parses and compiles, and the marker traits in the `serde`
//! shim are simply never implemented.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
