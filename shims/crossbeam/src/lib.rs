//! Hermetic shim for the `crossbeam` crate: multi-producer
//! multi-consumer channels with the semantics the workspace relies on.
//! See `shims/README.md` for why this exists.

pub mod channel {
    //! MPMC channels: `unbounded`, `bounded`, timeouts, disconnect
    //! detection. Built on `Mutex<VecDeque>` + `Condvar`; correctness
    //! over raw throughput.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
    }

    /// The sending half; cloneable, usable from any thread.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// The receiving half; cloneable, usable from any thread.
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// `send` failed because every receiver is gone; returns the value.
    pub struct SendError<T>(pub T);

    /// `recv` failed: the channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a failed `recv_timeout`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Outcome of a failed `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("receive timed out"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel empty"),
                TryRecvError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for RecvTimeoutError {}
    impl std::error::Error for TryRecvError {}

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    /// A channel with no capacity bound: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// A channel holding at most `cap` messages: `send` blocks while
    /// full (and at least one receiver is alive).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T> Sender<T> {
        /// Queue `value`, blocking while a bounded channel is full.
        /// Fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.0.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.0.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.0.lock().queue.len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue, blocking until a message arrives. Fails only when
        /// the queue is drained and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue, blocking at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .0
                    .not_empty
                    .wait_timeout(st, left)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.lock();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.0.lock().queue.len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = self.0.lock();
                st.senders -= 1;
                st.senders
            };
            if remaining == 0 {
                // Receivers blocked in recv must wake to observe the
                // disconnect.
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = self.0.lock();
                st.receivers -= 1;
                st.receivers
            };
            if remaining == 0 {
                // Senders blocked on a full bounded channel must wake
                // to observe the disconnect.
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_and_disconnect() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn timeout_fires_then_delivery_works() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        }

        #[test]
        fn try_recv_reports_empty_then_disconnected() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(3).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(3));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t = thread::spawn(move || {
                tx.send(3).unwrap(); // blocks until a recv frees a slot
                "sent"
            });
            thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(t.join().unwrap(), "sent");
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn cross_thread_producers() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let tx = tx.clone();
                    thread::spawn(move || {
                        for i in 0..250 {
                            tx.send(t * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(rx.iter().count(), 1000);
        }
    }
}
