//! Hermetic shim for `serde`. See `shims/README.md`.
//!
//! The workspace uses serde only as derive annotations on config and
//! sketch types — no serializer is ever invoked (the wire format is
//! hand-rolled in `elga-net`). This shim keeps those annotations
//! compiling: marker traits in the value namespace, no-op derive
//! macros in the macro namespace, same import paths as upstream.

/// Marker trait; upstream: types that can be serialized.
pub trait Serialize {}

/// Marker trait; upstream: types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
